"""Scatter-gather coordination over shard worker processes.

:class:`ShardCoordinator` owns one :class:`ShardWorkerHandle` per
ownership span. A durable top-k query is answered in three moves:

1. **Scatter** — resolve the query interval, clip it against each span,
   and submit one sub-query per intersecting shard (all pipes written
   before any response is awaited, so shards run genuinely in
   parallel — in separate processes, outside this interpreter's GIL).
2. **Gather** — await the per-shard answers; a crashed worker fails its
   future with :class:`ShardCrashed`, which triggers a restart and one
   resubmit of exactly the lost sub-queries.
3. **Merge** — concatenate per-span ids in span order (see
   :func:`~repro.shard.dataset.merge_shard_answers`), union the
   max-duration maps, and sum the per-shard :class:`QueryStats`
   counters. Per-shard fanout detail lands in ``result.extra`` so the
   serving metrics can account for it.

Handles multiplex one pipe among many coordinator-side threads: writers
tag requests with a sequence number under a send lock, and a dedicated
reader thread per handle resolves response futures by tag — so the
service's worker threads scatter concurrently without ever blocking each
other on a shard round-trip.
"""

from __future__ import annotations

import itertools
import multiprocessing
import sys
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any

from repro.core.query import DurableTopKResult, QueryStats
from repro.core.record import Dataset
from repro.obs import absorb_remote_spans, current_context, global_registry, trace_span
from repro.service.request import QueryRequest, preference_key
from repro.shard.dataset import ShardedDataset, ShardSpan, merge_shard_answers
from repro.shard.worker import shard_worker_main, unpack_stats

__all__ = ["ShardCoordinator", "ShardCrashed", "ShardRemoteError", "ShardWorkerHandle"]


class ShardCrashed(RuntimeError):
    """A shard worker process died (or its pipe broke) mid-request."""


class ShardRemoteError(RuntimeError):
    """An exception raised inside a shard worker, re-surfaced here."""

    def __init__(self, kind: str, message: str, remote_traceback: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.message = message
        self.remote_traceback = remote_traceback


class ShardWorkerHandle:
    """Coordinator-side endpoint of one worker: process + multiplexed pipe."""

    def __init__(self, span: ShardSpan, process, conn) -> None:
        self.span = span
        self.process = process
        self.conn = conn
        self.alive = True
        self._closed = False
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._pending: dict[int, "Future[Any]"] = {}
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"shard-{span.shard}-reader",
            daemon=True,
        )
        self._reader.start()

    def submit(
        self, op: str, payload: Any, trace_ctx: tuple[str, str] | None = None
    ) -> "Future[Any]":
        """Send one request; the returned future resolves off-thread.

        ``trace_ctx`` is a ``(trace_id, parent_span_id)`` pair piggybacked
        on the seq-tagged message; the worker collects its spans under it
        and ships them back on the response, where the reader thread
        stitches them into the coordinator-side trace.
        """
        future: "Future[Any]" = Future()
        with self._lock:
            if not self.alive:
                raise ShardCrashed(f"shard {self.span.shard} worker is down")
            seq = next(self._seq)
            self._pending[seq] = future
            try:
                self.conn.send((seq, op, payload, trace_ctx))
            except (BrokenPipeError, OSError) as exc:
                self._pending.pop(seq, None)
                self.alive = False
                raise ShardCrashed(f"shard {self.span.shard} pipe broke: {exc}") from exc
            except Exception:
                # e.g. an unpicklable payload: nothing reached the pipe,
                # so the worker is fine — fail only this request.
                self._pending.pop(seq, None)
                raise
        return future

    def _read_loop(self) -> None:
        while True:
            try:
                message = self.conn.recv()
            except (EOFError, OSError):
                break
            except Exception:
                break
            seq, status, payload = message[0], message[1], message[2]
            if len(message) > 3 and message[3]:
                # Stitch worker-process spans into the in-flight trace
                # *before* the future resolves, so they are in place by
                # the time the querying thread closes its scatter span.
                absorb_remote_spans(message[3])
            with self._lock:
                future = self._pending.pop(seq, None)
            if future is None:
                continue
            if status == "ok":
                future.set_result(payload)
            else:
                future.set_exception(ShardRemoteError(*payload))
        with self._lock:
            self.alive = False
            pending = list(self._pending.values())
            self._pending.clear()
        crash = ShardCrashed(f"shard {self.span.shard} worker died mid-request")
        for future in pending:
            future.set_exception(crash)

    def close(self, graceful: bool = True, timeout: float = 5.0) -> None:
        """Stop the worker: ask nicely, then escalate. Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if graceful:
            with self._lock:
                if self.alive:
                    try:
                        self.conn.send((-1, "exit", None))
                    except (BrokenPipeError, OSError):
                        pass
            self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - last resort
            self.process.kill()
            self.process.join(timeout=timeout)
        try:
            self.conn.close()
        except OSError:
            pass
        self._reader.join(timeout=timeout)
        self.process.close()


class ShardCoordinator:
    """Scatter durable top-k queries across shard workers; merge exactly.

    Parameters
    ----------
    dataset:
        A :class:`~repro.core.record.Dataset` (a fresh
        :class:`ShardedDataset` is built and owned) or an existing
        :class:`ShardedDataset` (caller keeps ownership of its shared
        memory).
    n_shards:
        Number of workers when ``dataset`` is a plain dataset.
    pool_capacity:
        Per-worker session-pool size; size it at or above the distinct
        preferences in flight so warm indexes survive between requests.
    request_timeout:
        Seconds to wait for one shard's sub-answer before giving up.
    start_method:
        ``multiprocessing`` start method; ``None`` picks ``"fork"``
        where available (fast spawns, nothing re-imported) and falls
        back to the platform default.
    """

    def __init__(
        self,
        dataset: "Dataset | ShardedDataset",
        n_shards: int | None = None,
        pool_capacity: int = 64,
        request_timeout: float = 60.0,
        start_method: str | None = None,
    ) -> None:
        if isinstance(dataset, ShardedDataset):
            if n_shards is not None and n_shards != dataset.n_shards:
                raise ValueError(
                    f"dataset is already partitioned into {dataset.n_shards} "
                    f"shards; n_shards={n_shards} conflicts"
                )
            self.sharded = dataset
            self._owns_dataset = False
        else:
            if n_shards is None:
                raise ValueError("n_shards is required when passing a plain Dataset")
            self.sharded = ShardedDataset(dataset, n_shards)
            self._owns_dataset = True
        if start_method is None and sys.platform == "linux":
            # Fast spawns, nothing re-imported. Linux only: on macOS fork
            # from a threaded process (restarts happen while reader and
            # service threads are live) can abort in the ObjC runtime, so
            # other platforms keep their default (spawn) — the handle is
            # picklable and the worker entry is a module-level function,
            # so spawn works everywhere.
            start_method = "fork"
        self._ctx = multiprocessing.get_context(start_method)
        self.pool_capacity = pool_capacity
        self.request_timeout = request_timeout
        self._handle_token = self.sharded.handle()
        self._restart_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._closed = False
        self.queries = 0
        self.subqueries: dict[int, int] = {span.shard: 0 for span in self.spans}
        self.fanout: dict[int, int] = {}
        self.restarts = 0
        self.revivals = 0
        self._handles: list[ShardWorkerHandle] = [self._spawn(span) for span in self.spans]

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    @property
    def spans(self) -> list[ShardSpan]:
        return self.sharded.spans

    @property
    def n_shards(self) -> int:
        return self.sharded.n_shards

    @property
    def dataset(self) -> Dataset:
        return self.sharded.dataset

    def _spawn(self, span: ShardSpan) -> ShardWorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=shard_worker_main,
            args=(child_conn, self._handle_token, span, self.pool_capacity),
            name=f"shard-worker-{span.shard}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return ShardWorkerHandle(span, process, parent_conn)

    def _restart(
        self, shard: int, failed: ShardWorkerHandle, revival: bool = False
    ) -> ShardWorkerHandle:
        """Replace a crashed handle (first caller wins; others reuse it).

        ``revival`` marks restarts initiated by :meth:`health_check`
        finding a worker dead *between* requests, as opposed to a crash
        surfacing mid-request; both count as restarts.
        """
        with self._restart_lock:
            if self._closed:
                raise ShardCrashed(f"shard {shard}: coordinator is closed")
            current = self._handles[shard]
            if current is failed:
                current.close(graceful=False, timeout=1.0)
                current = self._spawn(self.spans[shard])
                self._handles[shard] = current
                with self._stats_lock:
                    self.restarts += 1
                    if revival:
                        self.revivals += 1
                global_registry().counter("shard.worker.restarts", shard=shard).inc()
                if revival:
                    global_registry().counter("shard.worker.revivals", shard=shard).inc()
            return current

    def _call(
        self, shard: int, op: str, payload: Any, trace_ctx: tuple[str, str] | None = None
    ) -> Any:
        """One sub-request with submit-side and gather-side crash retry."""
        handle = self._handles[shard]
        try:
            future = handle.submit(op, payload, trace_ctx)
        except ShardCrashed:
            handle = self._restart(shard, handle)
            future = handle.submit(op, payload, trace_ctx)
        try:
            return future.result(timeout=self.request_timeout)
        except ShardCrashed:
            retry = self._restart(shard, handle)
            return retry.submit(op, payload, trace_ctx).result(timeout=self.request_timeout)
        except FutureTimeoutError as exc:
            raise TimeoutError(
                f"shard {shard} did not answer within {self.request_timeout}s"
            ) from exc

    def health_check(self, restart_dead: bool = True) -> list[dict]:
        """Ping every shard; optionally restart any dead worker first.

        Returns one info dict per shard (pid, span, served count). With
        ``restart_dead`` the check is also the repair: a worker whose
        process died between requests is respawned before the ping, and
        a crash *during* the ping triggers the usual restart-and-retry.
        """
        infos = []
        for shard, handle in enumerate(self._handles):
            if restart_dead and not handle.alive:
                self._restart(shard, handle, revival=True)
            infos.append(self._call(shard, "ping", None))
        return infos

    def worker_stats(self) -> list[dict]:
        """Per-worker served counts and session-pool stats."""
        return [self._call(shard, "stats", None) for shard in range(self.n_shards)]

    def stats(self) -> dict:
        """Coordinator-side counters: fanout histogram, restarts, shares."""
        with self._stats_lock:
            return {
                "queries": self.queries,
                "subqueries": dict(self.subqueries),
                "fanout": dict(self.fanout),
                "restarts": self.restarts,
                "revivals": self.revivals,
                "shards": self.n_shards,
            }

    def close(self) -> None:
        """Stop every worker; release the shared block if this side owns it."""
        with self._restart_lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles)
        for handle in handles:
            handle.close()
        if self._owns_dataset:
            self.sharded.close()

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The scatter-gather query path
    # ------------------------------------------------------------------
    def query(self, request: QueryRequest, with_durations: bool = False) -> DurableTopKResult:
        """Answer one request, byte-identical to a single-process run.

        Sub-queries carry the scorer (a small picklable object), the
        clipped interval and the query parameters; the dataset itself
        never travels. The merged result's ``stats`` are the per-shard
        counters summed, and ``extra`` records which shards served the
        request (``shards``), the fanout width, and each shard's top-k
        query share.
        """
        query = request.as_query()
        lo, hi = query.resolve_interval(self.sharded.n)
        targets = []
        for span in self.spans:
            clipped = span.intersect(lo, hi)
            if clipped is not None:
                targets.append((span.shard, clipped))
        with trace_span(
            "shard.scatter",
            op="query",
            fanout=len(targets),
            shards=[shard for shard, _ in targets],
        ):
            start = time.perf_counter()
            answers = self._scatter(
                "query",
                [
                    (
                        shard,
                        {
                            "scorer": request.scorer,
                            "k": request.k,
                            "tau": request.tau,
                            "lo": qlo,
                            "hi": qhi,
                            "direction": request.direction.value,
                            "algorithm": request.algorithm,
                            "with_durations": with_durations,
                        },
                    )
                    for shard, (qlo, qhi) in targets
                ],
            )
            elapsed = time.perf_counter() - start

        stats = QueryStats()
        durations: dict[int, int] = {}
        shard_topk: dict[int, int] = {}
        for (shard, _), answer in zip(targets, answers):
            shard_stats = unpack_stats(answer["stats"])
            shard_topk[shard] = shard_stats.topk_queries
            stats.add(shard_stats)
            if answer["durations"]:
                durations.update(answer["durations"])
        with self._stats_lock:
            self.queries += 1
            width = len(targets)
            self.fanout[width] = self.fanout.get(width, 0) + 1
            for shard, _ in targets:
                self.subqueries[shard] += 1
        return DurableTopKResult(
            ids=merge_shard_answers([answer["ids"] for answer in answers]),
            query=query,
            algorithm=request.algorithm,
            stats=stats,
            elapsed_seconds=elapsed,
            durations=durations if with_durations else None,
            extra={
                "shards": [shard for shard, _ in targets],
                "shard_fanout": len(targets),
                "shard_topk_queries": shard_topk,
                "shard_elapsed_max": max(answer["elapsed"] for answer in answers),
            },
        )

    def query_batch(
        self, requests: list[QueryRequest], with_durations: bool = False
    ) -> list[DurableTopKResult]:
        """Answer a same-preference batch with one sub-request per shard.

        Instead of one pipe round-trip per ``(request, shard)`` pair, the
        batch's clipped sub-queries are grouped by intersecting span and
        shipped as a single seq-tagged ``"query_batch"`` message per
        shard; each worker answers its group through one warm session's
        shared batched pass. Gathered answers are regrouped per original
        request and merged exactly as :meth:`query` merges — results are
        byte-identical to a serial loop, in input order. All requests
        must share one preference (the service's batching key).
        """
        requests = list(requests)
        if not requests:
            return []
        key = preference_key(requests[0].scorer)
        for request in requests[1:]:
            if preference_key(request.scorer) != key:
                raise ValueError(
                    "query_batch serves one preference per batch; got requests "
                    f"keyed {key} and {preference_key(request.scorer)}"
                )
        n = self.sharded.n
        queries = [request.as_query() for request in requests]
        per_shard_entries: dict[int, list[dict]] = {}
        per_shard_positions: dict[int, list[int]] = {}
        targets_per_query: list[list[int]] = []
        for i, (request, query) in enumerate(zip(requests, queries)):
            lo, hi = query.resolve_interval(n)
            touched: list[int] = []
            for span in self.spans:
                clipped = span.intersect(lo, hi)
                if clipped is None:
                    continue
                per_shard_entries.setdefault(span.shard, []).append(
                    {
                        "k": request.k,
                        "tau": request.tau,
                        "lo": clipped[0],
                        "hi": clipped[1],
                        "direction": request.direction.value,
                        "algorithm": request.algorithm,
                    }
                )
                per_shard_positions.setdefault(span.shard, []).append(i)
                touched.append(span.shard)
            targets_per_query.append(touched)

        shards = sorted(per_shard_entries)
        with trace_span(
            "shard.scatter",
            op="query_batch",
            batch_size=len(requests),
            fanout=len(shards),
            shards=list(shards),
        ):
            start = time.perf_counter()
            shard_answers = self._scatter(
                "query_batch",
                [
                    (
                        shard,
                        {
                            "scorer": requests[0].scorer,
                            "queries": per_shard_entries[shard],
                            "with_durations": with_durations,
                        },
                    )
                    for shard in shards
                ],
            )
            elapsed = time.perf_counter() - start
        answer_of: dict[tuple[int, int], dict] = {}
        for shard, answers in zip(shards, shard_answers):
            for position, answer in zip(per_shard_positions[shard], answers):
                answer_of[(shard, position)] = answer

        with self._stats_lock:
            self.queries += len(requests)
            for touched in targets_per_query:
                width = len(touched)
                self.fanout[width] = self.fanout.get(width, 0) + 1
                for shard in touched:
                    self.subqueries[shard] += 1

        results: list[DurableTopKResult] = []
        for i, (request, query) in enumerate(zip(requests, queries)):
            touched = targets_per_query[i]
            answers = [answer_of[(shard, i)] for shard in touched]
            stats = QueryStats()
            durations: dict[int, int] = {}
            shard_topk: dict[int, int] = {}
            for shard, answer in zip(touched, answers):
                shard_stats = unpack_stats(answer["stats"])
                shard_topk[shard] = shard_stats.topk_queries
                stats.add(shard_stats)
                if answer["durations"]:
                    durations.update(answer["durations"])
            results.append(
                DurableTopKResult(
                    ids=merge_shard_answers([answer["ids"] for answer in answers]),
                    query=query,
                    algorithm=request.algorithm,
                    stats=stats,
                    elapsed_seconds=elapsed,
                    durations=durations if with_durations else None,
                    extra={
                        "shards": list(touched),
                        "shard_fanout": len(touched),
                        "shard_topk_queries": shard_topk,
                        "shard_elapsed_max": max(answer["elapsed"] for answer in answers),
                    },
                )
            )
        return results

    def _scatter(self, op: str, items: list[tuple[int, Any]]) -> list[Any]:
        """Submit one payload per shard, then gather (restarting crashes).

        All pipes are written before any response is awaited, so shards
        run genuinely in parallel; a crash triggers a restart and one
        resubmit of exactly the lost payloads. Works for single
        (``"query"``) and batched (``"query_batch"``) sub-requests alike.
        """
        trace_ctx = current_context()
        inflight: list[tuple[int, Any, ShardWorkerHandle | None, "Future[Any] | None"]] = []
        for shard, payload in items:
            handle = self._handles[shard]
            try:
                inflight.append(
                    (shard, payload, handle, handle.submit(op, payload, trace_ctx))
                )
            except ShardCrashed:
                inflight.append((shard, payload, None, None))  # restart at gather time
        answers = []
        for shard, payload, handle, future in inflight:
            if future is None:
                answers.append(self._call(shard, op, payload, trace_ctx))
                continue
            try:
                answers.append(future.result(timeout=self.request_timeout))
            except ShardCrashed:
                retry = self._restart(shard, handle)
                answers.append(
                    retry.submit(op, payload, trace_ctx).result(timeout=self.request_timeout)
                )
            except FutureTimeoutError as exc:
                raise TimeoutError(
                    f"shard {shard} did not answer within {self.request_timeout}s"
                ) from exc
        return answers
