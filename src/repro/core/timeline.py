"""Bridging real timestamps and the normalised arrival-index domain.

The algorithms operate on dense arrival indices ``0..n-1`` (Section II's
discrete time domain). Real applications speak calendar time: "a 5-year
window", "between 2002 and 2010". :class:`Timeline` converts both ways
for datasets whose original timestamps are numeric or datetime-like.
"""

from __future__ import annotations

import bisect
from typing import Any, Sequence

__all__ = ["Timeline"]


class Timeline:
    """Timestamp <-> arrival-index conversion for one dataset.

    Timestamps must be non-decreasing (the dataset normalisation
    guarantees this) and mutually comparable (all numbers, all datetimes,
    all strings with a sortable format, ...).
    """

    def __init__(self, timestamps: Sequence[Any]) -> None:
        if len(timestamps) == 0:
            raise ValueError("timestamps must be non-empty")
        previous = timestamps[0]
        for ts in timestamps[1:]:
            if ts < previous:
                raise ValueError("timestamps must be non-decreasing")
            previous = ts
        self._ts = list(timestamps)

    @classmethod
    def for_dataset(cls, dataset) -> "Timeline":
        """Build from a dataset's retained original timestamps."""
        if dataset.timestamps is None:
            raise ValueError(f"dataset {dataset.name!r} kept no original timestamps")
        return cls(dataset.timestamps)

    def __len__(self) -> int:
        return len(self._ts)

    # ------------------------------------------------------------------
    def timestamp_of(self, t: int) -> Any:
        """Original timestamp of arrival index ``t``."""
        return self._ts[t]

    def first_at_or_after(self, timestamp: Any) -> int | None:
        """Smallest arrival index with timestamp >= the given one."""
        pos = bisect.bisect_left(self._ts, timestamp)
        return pos if pos < len(self._ts) else None

    def last_at_or_before(self, timestamp: Any) -> int | None:
        """Largest arrival index with timestamp <= the given one."""
        pos = bisect.bisect_right(self._ts, timestamp) - 1
        return pos if pos >= 0 else None

    def interval_for(self, start: Any, end: Any) -> tuple[int, int]:
        """The arrival-index interval of records in ``[start, end]``.

        Raises when the range holds no records.
        """
        if end < start:
            raise ValueError(f"end {end!r} before start {start!r}")
        lo = self.first_at_or_after(start)
        hi = self.last_at_or_before(end)
        if lo is None or hi is None or hi < lo:
            raise ValueError(f"no records with timestamps in [{start!r}, {end!r}]")
        return lo, hi

    def tau_for_span(self, span, at: int | None = None) -> int:
        """Number of arrival slots covering a timestamp ``span``.

        ``span`` is anything subtractable from timestamps (a number for
        numeric timestamps, a ``timedelta`` for datetimes). The count is
        taken looking back from arrival ``at`` (default: the last record),
        i.e. how many records arrived within ``span`` before it — the
        natural ``tau`` for "a five-year window ending here".
        """
        at = len(self._ts) - 1 if at is None else at
        anchor = self._ts[at]
        start = anchor - span
        lo = bisect.bisect_left(self._ts, start, 0, at + 1)
        return max(1, at - lo)

    def median_tau_for_span(self, span, samples: int = 32) -> int:
        """A span->tau conversion robust to uneven arrival rates.

        Samples :meth:`tau_for_span` at evenly spaced anchors and takes
        the median, so a burst near the end does not skew the window.
        """
        n = len(self._ts)
        if samples < 1:
            raise ValueError("samples must be >= 1")
        anchors = [min(n - 1, max(0, (i * (n - 1)) // max(1, samples - 1))) for i in range(samples)]
        taus = sorted(self.tau_for_span(span, at=a) for a in anchors)
        return taus[len(taus) // 2]
