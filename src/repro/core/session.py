"""Per-preference query sessions: one caching interface for both backends.

A durable top-k query issues many range top-k calls *with the same
preference vector* — T-Hop hops through dozens of windows, T-Base re-runs
a query on every durable expiry, and an interactive user explores many
``k``/``tau``/interval combinations under one scoring function. All of
that work shares preference-bound state that is wasteful to recompute per
call:

* block/level upper bounds (the branch-and-bound pruning keys),
* decoded index payloads (skyline points, already scored),
* per-range and per-page score vectors.

:class:`QuerySession` is the shared cache carrier. The MiniDB backend
subclasses it as :class:`repro.minidb.session.MiniDBSession` (adding
page-accounting replay, see that module), and the in-memory engine as
:class:`repro.core.engine.EngineSession` (binding the preference-bound
top-k index). Both expose the same contract:

* a session is bound to **one** preference vector / scoring function and
  must never be shared across preferences;
* caches only ever hold values derived from the dataset and the bound
  preference, so a session can be dropped (or kept) at any point without
  correctness consequences;
* cached state saves CPU, never observable work: page accounting (MiniDB)
  and query statistics (engine) are charged exactly as without a session.

Sessions are context managers: ``with engine.session(scorer) as s: ...``
releases the cached state deterministically on exit. The service layer's
:class:`repro.service.pool.SessionPool` relies on :meth:`QuerySession.close`
to free evicted sessions eagerly instead of waiting for garbage collection.
"""

from __future__ import annotations

import numpy as np

__all__ = ["QuerySession"]


class QuerySession:
    """Reusable per-preference caches for one durable query (or session).

    Attributes
    ----------
    u:
        The bound preference vector (``None`` for engine sessions whose
        scoring function has no weight vector).
    ub:
        Upper-bound cache, keyed by index-node identity.
    points:
        Decoded index payload cache (e.g. a block's skyline points as an
        ``(m, d+1)`` array), keyed by index-node identity.
    range_scores:
        Score vectors for contiguous row ranges, keyed by ``(lo, hi)``.
    page_scores:
        Score vectors for whole storage pages, keyed by page id.
    window_memo / window_memo_reverse:
        Optional persistent :class:`~repro.cache.windows.WindowMemo`
        pair (forward / time-reversed) attached by a serving backend.
        When present, batched execution binds the memo instead of a
        batch-scoped one, so top-k windows answered by earlier batches
        seed later ones (the cache's *seeded* tier). The memo re-binds
        per batch against the dataset/snapshot version, so it obeys the
        same epoch-invalidation contract as every other session cache.
    """

    __slots__ = (
        "u",
        "ub",
        "points",
        "range_scores",
        "page_scores",
        "window_memo",
        "window_memo_reverse",
        "closed",
    )

    def __init__(self, u: np.ndarray | None = None) -> None:
        self.u = None if u is None else np.asarray(u, dtype=float)
        self.ub: dict = {}
        self.points: dict = {}
        self.range_scores: dict = {}
        self.page_scores: dict = {}
        self.window_memo = None
        self.window_memo_reverse = None
        self.closed = False

    def clear(self) -> None:
        """Drop all cached state (the binding to ``u`` is kept).

        Persistent window memos are emptied, not detached: an epoch
        rebind calls ``clear()`` and must still find the memo attached
        for the next batch.
        """
        self.ub.clear()
        self.points.clear()
        self.range_scores.clear()
        self.page_scores.clear()
        if self.window_memo is not None:
            self.window_memo.clear()
        if self.window_memo_reverse is not None:
            self.window_memo_reverse.clear()

    def close(self) -> None:
        """Release cached state and mark the session closed.

        Closing is idempotent. A closed session may not serve further
        queries, but because caches only ever hold state derived from the
        dataset and the bound preference, closing at *any* point is safe —
        there is nothing to flush and no correctness consequence.
        """
        self.clear()
        self.closed = True

    def __enter__(self) -> "QuerySession":
        if self.closed:
            raise RuntimeError("session is closed")
        return self

    def __exit__(self, *exc) -> None:
        self.close()
