"""Blocking-interval mechanism of the score-prioritized algorithms.

Section IV, Figure 3: when a record ``q`` is visited (in descending score
order) it *blocks* the time interval ``[q.t, q.t + tau]`` — any record
arriving there has ``q`` inside its own look-back window with a higher
score. Once a timestamp is covered by ``k`` blocking intervals, no record
arriving at it can be tau-durable.

Because every blocking interval has the same length ``tau``, it suffices to
store left endpoints: the number of intervals covering ``t`` equals the
number of left endpoints inside ``[t - tau, t]``, which a Fenwick tree over
the time domain answers in ``O(log n)``; insertions are ``O(log n)`` too.
(The paper uses a balanced BST; a Fenwick tree over the discrete time
domain is the equivalent array-friendly choice.)
"""

from __future__ import annotations

from repro.index.fenwick import FenwickTree

__all__ = ["BlockingIntervals"]


class BlockingIntervals:
    """Same-length interval container with stabbing counts.

    >>> blocks = BlockingIntervals(n=10, tau=3)
    >>> blocks.add(2)
    True
    >>> blocks.add(2)          # duplicates are ignored
    False
    >>> blocks.count_at(4)     # [2, 5] covers 4
    1
    >>> blocks.count_at(6)
    0
    """

    def __init__(self, n: int, tau: int) -> None:
        if tau < 1:
            raise ValueError(f"tau must be >= 1, got {tau}")
        self._fenwick = FenwickTree(n)
        self._tau = tau
        self._added: set[int] = set()

    @property
    def tau(self) -> int:
        """Length of every blocking interval."""
        return self._tau

    @property
    def n_intervals(self) -> int:
        """Number of distinct intervals added so far."""
        return len(self._added)

    def add(self, left: int) -> bool:
        """Insert the interval ``[left, left + tau]``.

        Returns ``False`` (and does nothing) when an interval with this left
        endpoint — i.e. from this record — was already added.
        """
        if left in self._added:
            return False
        self._added.add(left)
        self._fenwick.add(left)
        return True

    def __contains__(self, left: int) -> bool:
        return left in self._added

    def count_at(self, t: int) -> int:
        """Number of blocking intervals containing timestamp ``t``."""
        return self._fenwick.range_sum(t - self._tau, t)

    def is_blocked(self, t: int, k: int) -> bool:
        """Whether ``t`` lies in at least ``k`` blocking intervals."""
        return self.count_at(t) >= k
