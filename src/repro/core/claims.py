"""Turning durable top-k answers into publishable claims.

The paper motivates durable top-k with statements journalists and
marketers make: "On January 22, 2006, Kobe Bryant dropped 81 points —
the top-1 scoring performance of the past 45 years". This module renders
query results into exactly that kind of sentence, using the record's
original timestamp/label, the query parameters, and (when computed) the
maximum durability.
"""

from __future__ import annotations

from repro.core.query import Direction, DurableTopKResult
from repro.core.record import Dataset

__all__ = ["claim_for", "claims_for_result"]


def _ordinal_phrase(k: int) -> str:
    return "top record" if k == 1 else f"top-{k} record"


def _span_phrase(slots: int, slots_per_unit: int | None, unit: str) -> str:
    if slots_per_unit:
        amount = max(1, round(slots / slots_per_unit))
        plural = unit if amount == 1 else unit + "s"
        return f"{amount} {plural}"
    plural = "arrival" if slots == 1 else "arrivals"
    return f"{slots} {plural}"


def claim_for(
    dataset: Dataset,
    t: int,
    k: int,
    tau: int,
    direction: Direction = Direction.PAST,
    duration: int | None = None,
    slots_per_unit: int | None = None,
    unit: str = "season",
    value_format: str = "{:.0f}",
    highlight_dim: int | None = None,
) -> str:
    """One publishable sentence for a durable record.

    ``duration`` (from ``with_durations=True``) upgrades the claim from
    the queried ``tau`` to the record's actual maximum durability;
    ``slots_per_unit``/``unit`` convert arrival slots to calendar-speak
    (e.g. records-per-season); ``highlight_dim`` names the attribute value
    to quote.

    >>> import numpy as np
    >>> from repro.core.record import Dataset
    >>> data = Dataset(np.array([[10.], [20.]]), timestamps=["Jan", "Feb"],
    ...                labels=["Ann", "Bob"])
    >>> claim_for(data, 1, k=1, tau=1, highlight_dim=0)
    'On Feb, Bob recorded x0 = 20 — the top record of the preceding 2 arrivals.'
    """
    record = dataset.record(t)
    when = record.timestamp if record.timestamp is not None else f"t={t}"
    who = record.label or f"record {t}"
    what = ""
    if highlight_dim is not None:
        name = dataset.attribute_names[highlight_dim]
        value = value_format.format(record.values[highlight_dim])
        what = f" recorded {name} = {value}"

    span_slots = duration if duration is not None else tau
    whole_history = duration is not None and duration >= dataset.n
    if whole_history:
        span = "entire recorded history"
    else:
        # A tau-window covers tau + 1 arrival slots, the record included.
        span = _span_phrase(span_slots + 1, slots_per_unit, unit)

    if direction is Direction.PAST:
        scope = "of the preceding " + span if not whole_history else "of the " + span
    else:
        scope = "for the following " + span if not whole_history else "for the " + span
        return f"On {when}, {who}{what} — and it remained a {_ordinal_phrase(k)} {scope}."
    return f"On {when}, {who}{what} — the {_ordinal_phrase(k)} {scope}."


def claims_for_result(
    dataset: Dataset,
    result: DurableTopKResult,
    limit: int = 10,
    **kwargs,
) -> list[str]:
    """Render up to ``limit`` claims for a query result (best-durability
    first when durations were computed, newest first otherwise)."""
    ids = result.ids
    durations = result.durations or {}
    if durations:
        ids = sorted(ids, key=lambda t: -durations.get(t, 0))
    else:
        ids = list(reversed(ids))
    return [
        claim_for(
            dataset,
            t,
            k=result.query.k,
            tau=result.query.tau,
            direction=result.query.direction,
            duration=durations.get(t),
            **kwargs,
        )
        for t in ids[:limit]
    ]
