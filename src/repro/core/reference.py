"""Brute-force oracles used for correctness testing.

These recompute durable top-k answers, window top-k sets and durability
counts directly from the score array, with no indexing or pruning. Every
algorithm in :mod:`repro.core.algorithms` is tested for exact equality
against these on randomised inputs.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "brute_force_topk",
    "brute_force_durable_topk",
    "strictly_better_counts",
    "brute_force_inclusive_durable_topk",
]


def brute_force_topk(scores: np.ndarray, k: int, lo: int, hi: int) -> list[int]:
    """Canonical top-k ids in ``[lo, hi]`` by full sort.

    Ranking follows the canonical total order: score descending, ties going
    to the later arrival.
    """
    scores = np.asarray(scores, dtype=float)
    lo = max(lo, 0)
    hi = min(hi, len(scores) - 1)
    if hi < lo or k <= 0:
        return []
    ids = np.arange(lo, hi + 1)
    window = scores[lo : hi + 1]
    order = np.lexsort((ids, window))[::-1]
    return [int(ids[i]) for i in order[:k]]


def strictly_better_counts(scores: np.ndarray, tau: int, lo: int, hi: int) -> np.ndarray:
    """For each ``t in [lo, hi]``: how many records in ``[t - tau, t]``
    have a strictly larger score than the record at ``t``.

    A record is tau-durable iff its count is ``< k``.
    """
    scores = np.asarray(scores, dtype=float)
    out = np.empty(hi - lo + 1, dtype=np.int64)
    for i, t in enumerate(range(lo, hi + 1)):
        w_lo = max(0, t - tau)
        out[i] = int(np.count_nonzero(scores[w_lo : t + 1] > scores[t]))
    return out


def brute_force_durable_topk(scores: np.ndarray, k: int, lo: int, hi: int, tau: int) -> list[int]:
    """All tau-durable record ids arriving in ``[lo, hi]`` (ascending).

    Uses the window-count definition directly: ``p`` is durable iff fewer
    than ``k`` records in ``[p.t - tau, p.t]`` score strictly higher. Under
    the canonical total order this equals membership of ``p`` in the top-k
    of its own look-back window (ties cannot beat the newest record).
    """
    scores = np.asarray(scores, dtype=float)
    lo = max(lo, 0)
    hi = min(hi, len(scores) - 1)
    if hi < lo:
        return []
    counts = strictly_better_counts(scores, tau, lo, hi)
    return [lo + int(i) for i in np.nonzero(counts < k)[0]]


def brute_force_inclusive_durable_topk(
    scores: np.ndarray, k: int, lo: int, hi: int, tau: int
) -> list[int]:
    """The paper's pi<=k-inclusive durable set.

    ``p`` qualifies when at most ``k - 1`` records in its window score
    *strictly* higher — for look-back windows this coincides with
    :func:`brute_force_durable_topk`; it is kept as a separate entry point
    to document (and test) that equivalence.
    """
    return brute_force_durable_topk(scores, k, lo, hi, tau)
