"""S-Band — durable k-skyband candidates (Section IV-B, Algorithm 2).

For monotone scoring functions, any record in the top-k of a window belongs
to the window's k-skyband; hence a tau-durable top-k record must be
tau-durable for the k-skyband. The offline
:class:`~repro.index.kskyband.DurableSkybandIndex` maps each record to its
longest k-skyband duration, so one 3-sided range query yields a candidate
superset ``C`` of the answer. Only ``C`` is sorted and examined.

A candidate blocked by fewer than ``k`` intervals still needs a durability
check: records outside ``C`` are never durable themselves, yet may outscore
(block) candidates, and those blockers are discovered lazily from the
top-k sets returned by failed durability checks (Figure 5).

Tie refinement (see DESIGN.md): the candidate-superset guarantee needs
Pareto domination to imply a *strictly* greater score. With a zero weight,
a record can tie its dominators' scores — durable under the library's
(and the paper's pi<=k) semantics while outside the durable k-skyband.
S-Band therefore requires ``scorer.is_strictly_monotone``.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms.base import AlgorithmContext, DurableTopKAlgorithm, register
from repro.core.blocking import BlockingIntervals

__all__ = ["ScoreBand"]


@register
class ScoreBand(DurableTopKAlgorithm):
    """The S-Band algorithm (Algorithm 2)."""

    name = "s-band"
    requires_monotone = True
    requires_skyband = True

    def check_supported(self, ctx: AlgorithmContext) -> None:
        super().check_supported(ctx)
        if not getattr(ctx.scorer, "is_strictly_monotone", False):
            raise ValueError(
                "s-band requires a strictly monotone scoring function "
                "(Pareto domination must imply a strictly greater score, "
                "e.g. a linear preference with all-positive weights); "
                f"{ctx.scorer.name} does not guarantee this"
            )

    def run(self, ctx: AlgorithmContext) -> list[int]:
        self.check_supported(ctx)
        index, k, tau = ctx.index, ctx.k, ctx.tau

        candidates = ctx.skyband.candidates(k, ctx.lo, ctx.hi, tau)
        ctx.stats.candidate_set_size = len(candidates)
        if not candidates:
            return []
        ordered = ctx.sort_ids_desc(np.asarray(candidates))

        blocks = BlockingIntervals(ctx.dataset.n, tau)
        answer: list[int] = []
        for p in ordered:
            if blocks.count_at(p) < k:
                top = index.topk(k, p - tau, p, kind="durability")
                if p in top:
                    answer.append(p)
                else:
                    ctx.stats.false_checks += 1
                    # Every returned record outscores p; make each block
                    # future (lower-scoring) candidates.
                    for q in top:
                        blocks.add(q)
            else:
                ctx.stats.blocked_skips += 1
            blocks.add(p)
        ctx.stats.blocking_intervals = blocks.n_intervals
        answer.sort()
        return answer
