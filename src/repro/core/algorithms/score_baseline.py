"""S-Base — full-sort score-prioritized baseline (Section IV-A).

Sort every record arriving in ``[lo - tau, hi]`` by descending score and
process in that order, maintaining blocking intervals:

* a record inside the query interval covered by fewer than ``k`` blocking
  intervals is durable (every possible blocker scores lower and is yet to
  be processed);
* every processed record adds its blocking interval ``[p.t, p.t + tau]``.

No top-k queries at all — the entire cost is the ``O(n log n)`` sort, which
is exactly why the paper dismisses it on large intervals.

Records *before* ``lo - tau`` can never intersect a query-interval record's
look-back window, so the sort range matches the paper's ``[t1 - tau, t2]``.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms.base import AlgorithmContext, DurableTopKAlgorithm, register
from repro.core.blocking import BlockingIntervals

__all__ = ["ScoreBaseline"]


@register
class ScoreBaseline(DurableTopKAlgorithm):
    """The S-Base algorithm."""

    name = "s-base"

    def run(self, ctx: AlgorithmContext) -> list[int]:
        self.check_supported(ctx)
        k, tau = ctx.k, ctx.tau
        start = max(0, ctx.lo - tau)
        ids = np.arange(start, ctx.hi + 1)
        ordered = ctx.sort_ids_desc(ids)

        blocks = BlockingIntervals(ctx.dataset.n, tau)
        answer: list[int] = []
        for t in ordered:
            if ctx.lo <= t <= ctx.hi and blocks.count_at(t) < k:
                answer.append(t)
            blocks.add(t)
        ctx.stats.blocking_intervals = blocks.n_intervals
        answer.sort()
        return answer
