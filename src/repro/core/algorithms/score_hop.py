"""S-Hop — score-prioritized traversal with hops (Section IV-C, Algorithm 3).

Visits records in globally descending score order *without* sorting: the
query interval is partitioned into disjoint ``tau``-length sub-intervals,
each contributing its top-k set ``M_i`` (fetched with one top-k query), and
a max-heap over the sets' current heads always exposes the next
highest-score unvisited candidate.

Popping record ``p`` from sub-interval band ``M_j``:

* ``p`` blocked by ``>= k`` intervals — an *auxiliary* record: advance
  ``M_j`` to its next entry; no top-k query spent.
* otherwise run the durability check on ``[p.t - tau, p.t]``. On success
  ``p`` is durable; on failure every returned top-k record becomes a
  blocking interval. Either way the band splits at ``p``: fresh top-k
  queries on ``[l_j, p.t - 1]`` and ``[p.t + 1, r_j]`` replace ``M_j``
  (this is the "hop in the score domain" — exhausted or fully-blocked
  stretches of time are never queried again).

Every popped record adds its blocking interval. Lemma 3 bounds the number
of top-k queries by ``O(|S| + k * ceil(|I| / tau))``, and Lemma 2 proves
the returned set exact.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.core.algorithms.base import AlgorithmContext, DurableTopKAlgorithm, register
from repro.core.blocking import BlockingIntervals

__all__ = ["ScoreHop"]


@dataclass
class _Band:
    """One sub-interval with its fetched top-k list and a cursor."""

    lo: int
    hi: int
    items: list[int]
    pos: int = 0

    def head(self) -> int:
        return self.items[self.pos]

    def advance(self) -> bool:
        """Move to the next item; False when exhausted."""
        self.pos += 1
        return self.pos < len(self.items)


@register
class ScoreHop(DurableTopKAlgorithm):
    """The S-Hop algorithm (Algorithm 3)."""

    name = "s-hop"

    #: Ablation switch: with blocking disabled every popped record pays a
    #: durability check (see :class:`ScoreHopNoBlocking`).
    use_blocking = True

    def run(self, ctx: AlgorithmContext) -> list[int]:
        self.check_supported(ctx)
        index, k, tau = ctx.index, ctx.k, ctx.tau
        blocks = BlockingIntervals(ctx.dataset.n, tau)
        answer: list[int] = []

        heap: list[tuple[float, int, _Band]] = []

        def push_band(lo: int, hi: int) -> None:
            """Fetch a fresh top-k band for [lo, hi] and enqueue its head."""
            if hi < lo:
                return
            items = index.topk(k, lo, hi, kind="candidate")
            if items:
                band = _Band(lo, hi, items)
                push_head(band)

        def push_head(band: _Band) -> None:
            head = band.head()
            # Negated id breaks score ties toward the later arrival,
            # keeping the pop sequence canonically non-increasing.
            heapq.heappush(heap, (-index.score(head), -head, band))
            ctx.stats.heap_pushes += 1

        for lo in range(ctx.lo, ctx.hi + 1, tau):
            push_band(lo, min(lo + tau - 1, ctx.hi))

        visited: set[int] = set()
        while heap:
            _, neg_id, band = heapq.heappop(heap)
            p = -neg_id
            if not self.use_blocking or blocks.count_at(p) < k:
                top = index.topk(k, p - tau, p, kind="durability")
                if p in top:
                    answer.append(p)
                else:
                    ctx.stats.false_checks += 1
                    for q in top:
                        if q not in visited:
                            visited.add(q)
                            blocks.add(q)
                # Split the band at p; its remaining items are superseded
                # by the two fresh sub-band queries.
                push_band(band.lo, p - 1)
                push_band(p + 1, band.hi)
            else:
                ctx.stats.blocked_skips += 1
                if band.advance():
                    push_head(band)
            if p not in visited:
                visited.add(p)
                blocks.add(p)

        ctx.stats.blocking_intervals = blocks.n_intervals
        answer.sort()
        return answer


@register
class ScoreHopNoBlocking(ScoreHop):
    """Ablation variant of S-Hop with the blocking mechanism disabled.

    Every heap pop pays a durability check, so the gap between this and
    plain S-Hop isolates the pruning power of blocking intervals —
    see ``benchmarks/test_ablation_blocking.py``. Results are identical;
    only the work differs.
    """

    name = "s-hop-noblock"
    use_blocking = False
