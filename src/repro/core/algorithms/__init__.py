"""The paper's five durable top-k algorithms.

Time-prioritized (Section III): :class:`TimeBaseline` (T-Base) and
:class:`TimeHop` (T-Hop). Score-prioritized (Section IV):
:class:`ScoreBaseline` (S-Base), :class:`ScoreBand` (S-Band) and
:class:`ScoreHop` (S-Hop).

All algorithms are pure control flow over the
:class:`~repro.core.algorithms.base.AlgorithmContext`; they answer the same
query exactly and differ only in how many top-k building-block calls they
make (Lemmas 1 and 3).
"""

from repro.core.algorithms.base import ALGORITHMS, AlgorithmContext, DurableTopKAlgorithm, get_algorithm
from repro.core.algorithms.score_band import ScoreBand
from repro.core.algorithms.score_baseline import ScoreBaseline
from repro.core.algorithms.score_hop import ScoreHop
from repro.core.algorithms.time_baseline import TimeBaseline
from repro.core.algorithms.time_hop import TimeHop

__all__ = [
    "AlgorithmContext",
    "DurableTopKAlgorithm",
    "ALGORITHMS",
    "get_algorithm",
    "TimeBaseline",
    "TimeHop",
    "ScoreBaseline",
    "ScoreBand",
    "ScoreHop",
]
