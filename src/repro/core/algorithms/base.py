"""Shared infrastructure for the durable top-k algorithms."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Type

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.query import QueryStats
    from repro.core.record import Dataset
    from repro.index.kskyband import DurableSkybandIndex
    from repro.index.topk import CountingTopKIndex
    from repro.scoring.base import ScoringFunction

__all__ = ["AlgorithmContext", "DurableTopKAlgorithm", "ALGORITHMS", "get_algorithm", "register"]


@dataclass
class AlgorithmContext:
    """Everything an algorithm needs to answer one look-back query.

    The engine resolves the direction beforehand, so algorithms only ever
    see look-back semantics on a (possibly reversed) dataset.

    Attributes
    ----------
    dataset:
        The dataset being queried.
    index:
        Counting top-k building block, already bound to the preference.
    scorer:
        The scoring function (used for bulk scoring in sort-based
        algorithms; point lookups go through ``index.score``).
    k, tau:
        Query parameters.
    lo, hi:
        The resolved inclusive query interval.
    stats:
        Counter sink shared with the engine.
    skyband:
        The durable k-skyband index; ``None`` unless the engine was built
        with one (required by S-Band only).
    """

    dataset: "Dataset"
    index: "CountingTopKIndex"
    scorer: "ScoringFunction"
    k: int
    tau: int
    lo: int
    hi: int
    stats: "QueryStats"
    skyband: "DurableSkybandIndex | None" = None

    def scores_for(self, ids: np.ndarray) -> np.ndarray:
        """Vectorised scores for an array of record ids."""
        ids = np.asarray(ids, dtype=np.int64)
        return self.scorer.scores(self.dataset.values[ids])

    def sort_ids_desc(self, ids: np.ndarray) -> list[int]:
        """Sort ids best-first under the canonical order, counting the work."""
        from repro.core.order import sort_ids_canonical

        ids = np.asarray(ids, dtype=np.int64)
        self.stats.records_sorted += len(ids)
        return [int(i) for i in sort_ids_canonical(ids, self.scores_for(ids))]


class DurableTopKAlgorithm(ABC):
    """Base class: a named strategy producing the exact durable top-k set."""

    #: Registry key and report label, e.g. ``"t-hop"``.
    name: str = "abstract"

    #: Whether the algorithm requires a monotone scoring function.
    requires_monotone: bool = False

    #: Whether the algorithm requires a durable k-skyband index.
    requires_skyband: bool = False

    @abstractmethod
    def run(self, ctx: AlgorithmContext) -> list[int]:
        """Return durable record ids in ``[ctx.lo, ctx.hi]``, ascending."""

    def check_supported(self, ctx: AlgorithmContext) -> None:
        """Raise when the context cannot support this algorithm."""
        if self.requires_monotone and not ctx.scorer.is_monotone:
            raise ValueError(
                f"{self.name} only supports monotone scoring functions; "
                f"{ctx.scorer.name} is not monotone"
            )
        if self.requires_skyband and ctx.skyband is None:
            raise ValueError(
                f"{self.name} needs a DurableSkybandIndex; build the engine "
                "with with_skyband=True (or pass skyband_k_max)"
            )


#: Registry of available algorithms, keyed by ``name``.
ALGORITHMS: dict[str, Type[DurableTopKAlgorithm]] = {}


def register(cls: Type[DurableTopKAlgorithm]) -> Type[DurableTopKAlgorithm]:
    """Class decorator adding an algorithm to the registry."""
    ALGORITHMS[cls.name] = cls
    return cls


def get_algorithm(name: str) -> DurableTopKAlgorithm:
    """Instantiate a registered algorithm by name.

    >>> get_algorithm("t-hop").name
    't-hop'
    """
    try:
        return ALGORITHMS[name]()
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise KeyError(f"unknown algorithm {name!r}; available: {known}") from None
