"""T-Hop — time-prioritized traversal with hops (Section III-B, Algorithm 1).

Visit records right-to-left. For the record at ``t``, ask one top-k query
on ``[t - tau, t]``:

* if the record is in the top-k it is durable; step to ``t - 1``;
* otherwise *hop* directly to the most recent arrival time among the top-k
  set — no record strictly between can be durable, because all k top
  records lie inside its look-back window with strictly higher scores
  (Figure 2).

Lemma 1 bounds the number of top-k queries by
``O(|S| + k * ceil(|I| / tau))``.
"""

from __future__ import annotations

from repro.core.algorithms.base import AlgorithmContext, DurableTopKAlgorithm, register

__all__ = ["TimeHop"]


@register
class TimeHop(DurableTopKAlgorithm):
    """The T-Hop algorithm (Algorithm 1)."""

    name = "t-hop"

    def run(self, ctx: AlgorithmContext) -> list[int]:
        self.check_supported(ctx)
        index, k, tau = ctx.index, ctx.k, ctx.tau
        answer: list[int] = []
        t = ctx.hi
        while t >= ctx.lo:
            top = index.topk(k, t - tau, t, kind="durability")
            if t in top:
                answer.append(t)
                t -= 1
            else:
                ctx.stats.false_checks += 1
                # Hop to the newest top-k member; everything in between is
                # dominated by all k of them within its own window.
                target = max(top)
                ctx.stats.hops += 1
                ctx.stats.hop_distance += t - target
                t = target
        answer.reverse()
        return answer
