"""T-Base — the sliding-window baseline (Section III-A).

Follows the continuous-monitoring approach of Mouratidis et al. [11]: slide
a ``tau``-length window backwards from the right end of the query interval,
maintaining its top-k set incrementally. The record arriving at the
window's right endpoint is durable iff it belongs to the maintained top-k.

Sliding from ``[t - tau, t]`` to ``[t - tau - 1, t - 1]`` expires the
record at ``t`` and admits the record at ``t - tau - 1``:

* if the expired record is **not** in the current top-k, the top-k only
  changes if the admitted record beats the current k-th — an ``O(log k)``
  incremental update;
* otherwise the top-k must be recomputed from scratch with one top-k query.

Every record in the interval is visited, so the running time is linear in
``|I|`` regardless of the answer size — the weakness T-Hop removes.
"""

from __future__ import annotations

import bisect

from repro.core.algorithms.base import AlgorithmContext, DurableTopKAlgorithm, register

__all__ = ["TimeBaseline"]


@register
class TimeBaseline(DurableTopKAlgorithm):
    """The T-Base algorithm."""

    name = "t-base"

    def run(self, ctx: AlgorithmContext) -> list[int]:
        self.check_supported(ctx)
        index, k, tau = ctx.index, ctx.k, ctx.tau
        answer: list[int] = []

        t = ctx.hi
        # Maintained state: the canonical top-k of [t - tau, t], stored as
        # an ascending list of (score, id) keys plus an id set.
        top_keys: list[tuple[float, int]] = sorted(
            (index.score(i), i) for i in index.topk(k, t - tau, t, kind="durability")
        )
        top_ids = {i for _, i in top_keys}

        while t >= ctx.lo:
            if t in top_ids:
                answer.append(t)
            if t == ctx.lo:
                break
            # Slide the window: expire the record at t, admit t - tau - 1.
            if t in top_ids:
                top_keys = sorted(
                    (index.score(i), i)
                    for i in index.topk(k, t - 1 - tau, t - 1, kind="durability")
                )
                top_ids = {i for _, i in top_keys}
            else:
                entering = t - 1 - tau
                if entering >= 0:
                    ctx.stats.incremental_updates += 1
                    key = (index.score(entering), entering)
                    if len(top_keys) < k:
                        bisect.insort(top_keys, key)
                        top_ids.add(entering)
                    elif key > top_keys[0]:
                        _, evicted = top_keys[0]
                        top_ids.discard(evicted)
                        top_keys.pop(0)
                        bisect.insort(top_keys, key)
                        top_ids.add(entering)
            t -= 1

        answer.reverse()
        return answer
