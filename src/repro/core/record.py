"""Record and dataset model.

The paper assumes a discrete time domain ``T = {1, ..., n}`` with one record
per instant, ordered by arrival (Section II). :class:`Dataset` normalises
any instant-stamped input into that shape: records are sorted by their
original timestamps (ties broken by input order, as the paper breaks ties
"arbitrarily" for same-game NBA performances) and re-addressed by integer
arrival index ``t in [0, n)``. Original timestamps are retained for
presentation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

import numpy as np

__all__ = ["Record", "Dataset"]


@dataclass(frozen=True)
class Record:
    """A single instant-stamped record (an immutable view into a dataset).

    Attributes
    ----------
    t:
        Normalised arrival index in ``[0, n)``; doubles as the record id.
    values:
        The record's ``d`` real-valued ranking attributes.
    timestamp:
        The original timestamp label, when the dataset kept one.
    label:
        Optional human-readable label (e.g. a player name).
    """

    t: int
    values: tuple[float, ...]
    timestamp: Any = None
    label: str | None = None

    def __getitem__(self, dim: int) -> float:
        return self.values[dim]

    @property
    def d(self) -> int:
        """Number of ranking attributes."""
        return len(self.values)


class Dataset:
    """An ordered collection of instant-stamped multi-attribute records.

    Parameters
    ----------
    values:
        ``(n, d)`` float array of ranking attributes, already in arrival
        order. Use :meth:`from_records` for unsorted input.
    timestamps:
        Optional sequence of original timestamp labels, same length.
    labels:
        Optional sequence of record labels, same length.
    attribute_names:
        Optional names of the ``d`` attributes.
    name:
        Dataset name used in reports.
    version:
        Epoch stamp of the dataset's content. Frozen snapshots of a
        :class:`~repro.ingest.live.LiveDataset` carry the live change
        counter here; static datasets stay at 0. Derived-index caches
        (the engine's preference LRU) key on it, so an index built for
        one epoch can never serve another.
    """

    def __init__(
        self,
        values: np.ndarray,
        timestamps: Sequence[Any] | None = None,
        labels: Sequence[str] | None = None,
        attribute_names: Sequence[str] | None = None,
        name: str = "dataset",
        version: int = 0,
    ) -> None:
        values = np.ascontiguousarray(np.asarray(values, dtype=float))
        if values.ndim != 2:
            raise ValueError(f"values must be a 2-D (n, d) array, got shape {values.shape}")
        if not np.isfinite(values).all():
            raise ValueError("values must be finite (no NaN/inf)")
        self._values = values
        n, d = values.shape
        if timestamps is not None and len(timestamps) != n:
            raise ValueError(f"timestamps length {len(timestamps)} != n={n}")
        if labels is not None and len(labels) != n:
            raise ValueError(f"labels length {len(labels)} != n={n}")
        if attribute_names is not None and len(attribute_names) != d:
            raise ValueError(f"attribute_names length {len(attribute_names)} != d={d}")
        self.timestamps = list(timestamps) if timestamps is not None else None
        self.labels = list(labels) if labels is not None else None
        self.attribute_names = (
            list(attribute_names) if attribute_names is not None else [f"x{i}" for i in range(d)]
        )
        self.name = name
        self.version = int(version)
        # Keys are cache names plus ("building", name) in-flight markers.
        self._cache: dict[Any, Any] = {}
        self._cache_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        rows: Iterable[tuple[Any, Sequence[float]]],
        labels: Sequence[str] | None = None,
        attribute_names: Sequence[str] | None = None,
        name: str = "dataset",
    ) -> "Dataset":
        """Build from ``(timestamp, attribute-values)`` pairs in any order.

        Rows are stably sorted by timestamp, so equal timestamps keep their
        input order ("ties broken arbitrarily" but deterministically).
        """
        rows = list(rows)
        order = sorted(range(len(rows)), key=lambda i: rows[i][0])
        values = np.array([rows[i][1] for i in order], dtype=float)
        if values.ndim == 1:
            values = values.reshape(len(rows), -1)
        timestamps = [rows[i][0] for i in order]
        sorted_labels = [labels[i] for i in order] if labels is not None else None
        return cls(values, timestamps, sorted_labels, attribute_names, name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The ``(n, d)`` attribute matrix (do not mutate)."""
        return self._values

    @property
    def n(self) -> int:
        """Number of records (also the size of the time domain)."""
        return len(self._values)

    @property
    def d(self) -> int:
        """Number of ranking attributes."""
        return self._values.shape[1]

    def __len__(self) -> int:
        return self.n

    def record(self, t: int) -> Record:
        """The record arriving at normalised time ``t``."""
        if not 0 <= t < self.n:
            raise IndexError(f"arrival time {t} out of range [0, {self.n})")
        return Record(
            t=t,
            values=tuple(float(v) for v in self._values[t]),
            timestamp=self.timestamps[t] if self.timestamps else None,
            label=self.labels[t] if self.labels else None,
        )

    def records(self, ts: Iterable[int]) -> list[Record]:
        """Records for a sequence of arrival times."""
        return [self.record(t) for t in ts]

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def select_attributes(self, dims: Sequence[int] | Sequence[str], name: str | None = None) -> "Dataset":
        """A dataset restricted to a subset of attributes.

        ``dims`` may be attribute indices or attribute names. Used to build
        the paper's NBA-X / Network-X dimensionality variants.
        """
        if len(dims) == 0:
            raise ValueError("at least one attribute must be selected")
        if isinstance(dims[0], str):
            index_of = {a: i for i, a in enumerate(self.attribute_names)}
            missing = [a for a in dims if a not in index_of]
            if missing:
                raise KeyError(f"unknown attributes: {missing}")
            idx = [index_of[a] for a in dims]
        else:
            idx = list(dims)  # type: ignore[arg-type]
        return Dataset(
            self._values[:, idx],
            timestamps=self.timestamps,
            labels=self.labels,
            attribute_names=[self.attribute_names[i] for i in idx],
            name=name or f"{self.name}-{len(idx)}",
            version=self.version,
        )

    def prefix(self, n: int, name: str | None = None) -> "Dataset":
        """The first ``n`` records (scalability sweeps)."""
        if not 0 < n <= self.n:
            raise ValueError(f"prefix size {n} out of range (0, {self.n}]")
        return Dataset(
            self._values[:n],
            timestamps=self.timestamps[:n] if self.timestamps else None,
            labels=self.labels[:n] if self.labels else None,
            attribute_names=self.attribute_names,
            name=name or f"{self.name}-{n}",
            version=self.version,
        )

    def reversed(self) -> "Dataset":
        """Time-reversed view (``t -> n-1-t``), used for look-ahead queries.

        The reversed dataset is cached; reversing twice returns a dataset
        equal to the original (not the identical object).
        """
        return self.get_or_build(
            "reversed",
            lambda: Dataset(
                self._values[::-1].copy(),
                timestamps=list(reversed(self.timestamps)) if self.timestamps else None,
                labels=list(reversed(self.labels)) if self.labels else None,
                attribute_names=self.attribute_names,
                name=f"{self.name}-reversed",
                version=self.version,
            ),
        )

    # ------------------------------------------------------------------
    # Index cache (skyline trees, skyband indexes, ...)
    # ------------------------------------------------------------------
    def has_cached(self, key: str) -> bool:
        """Whether a derived index is cached under ``key``."""
        with self._cache_lock:
            return key in self._cache

    def get_cached(self, key: str) -> Any:
        """Fetch a cached derived index (``None`` when absent)."""
        with self._cache_lock:
            return self._cache.get(key)

    def set_cached(self, key: str, value: Any) -> None:
        """Cache a derived index under ``key``.

        Thread-safe, last-writer-wins. Concurrent builders racing to cache
        the same key should prefer :meth:`get_or_build`, which publishes
        exactly one instance.
        """
        with self._cache_lock:
            self._cache[key] = value

    def get_or_build(self, key: str, factory: Callable[[], Any]) -> Any:
        """The cached value under ``key``, building it once if absent.

        Double-checked: the factory runs outside the lock (index builds
        take seconds at scale and must not serialise readers of other
        keys), and the first finished builder wins — concurrent callers
        for the same key all receive the published instance, so shared
        structures such as the skyline tree are never duplicated across
        sessions.
        """
        with self._cache_lock:
            cached = self._cache.get(key)
            building = self._cache.get(("building", key))
            if cached is not None:
                return cached
            if building is None:
                building = threading.Event()
                self._cache[("building", key)] = building
                builder = True
            else:
                builder = False
        if not builder:
            building.wait()
            with self._cache_lock:
                cached = self._cache.get(key)
            if cached is None:  # builder failed; retry (and maybe build)
                return self.get_or_build(key, factory)
            return cached
        try:
            value = factory()
            with self._cache_lock:
                self._cache[key] = value
        finally:
            with self._cache_lock:
                self._cache.pop(("building", key), None)
            building.set()
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dataset(name={self.name!r}, n={self.n}, d={self.d})"
