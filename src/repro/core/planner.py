"""Cost-based algorithm selection for durable top-k queries.

Section VI's conclusion is a decision rule in prose: the hop algorithms
are the robust default; S-Band wins on low-dimensional, benign data when
its offline index exists; the baselines only win degenerate corners
(S-Base when nearly every record is an answer). This module turns that
into an explicit planner driven by the Section V expectations:

* expected answer size ``E|S| = k·|I|/(τ+1)`` (Lemma 4),
* expected candidate set ``E|C| ≈ (|I|/τ)·A(τ+1, d)`` (Lemma 5),

plus per-operation cost constants that can be recalibrated from measured
runs. ``algorithm="auto"`` on the engine delegates here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.expected import expected_answer_size, expected_skyband_size

__all__ = ["CostModel", "PlannerDecision", "choose_algorithm"]


@dataclass(frozen=True)
class CostModel:
    """Relative per-operation costs (units are arbitrary; ratios matter).

    Defaults were calibrated on this repo's benchmark machine: one top-k
    building-block query costs roughly 40x one sequential per-record step,
    and sorting costs ~2 log-factors per record.
    """

    topk_query: float = 40.0
    per_record: float = 1.0
    per_candidate: float = 3.0
    sort_per_record: float = 2.5

    def scale_topk(self, k: int) -> float:
        """Top-k query cost grows with k (heap rounds / deeper search)."""
        return self.topk_query * (1.0 + 0.05 * k)


@dataclass(frozen=True)
class PlannerDecision:
    """The chosen algorithm plus the estimates that justified it."""

    algorithm: str
    estimates: dict[str, float]
    expected_answer: float
    expected_candidates: float | None

    def explain(self) -> str:
        """One-line human-readable rationale."""
        costs = ", ".join(f"{a}={c:.0f}" for a, c in sorted(self.estimates.items(), key=lambda kv: kv[1]))
        return (
            f"chose {self.algorithm} (E|S|~{self.expected_answer:.0f}"
            + (
                f", E|C|~{self.expected_candidates:.0f}"
                if self.expected_candidates is not None
                else ""
            )
            + f"; est. costs: {costs})"
        )


def choose_algorithm(
    k: int,
    tau: int,
    interval_length: int,
    d: int,
    scorer_monotone: bool,
    scorer_strictly_monotone: bool = False,
    has_skyband_index: bool = False,
    cost_model: CostModel | None = None,
) -> PlannerDecision:
    """Pick the cheapest applicable algorithm for one query shape.

    >>> choose_algorithm(5, 1000, 5000, 2, True, True, True).algorithm
    's-band'
    >>> choose_algorithm(5, 1000, 5000, 30, True, True, True).algorithm
    't-hop'
    """
    if k < 1 or tau < 1 or interval_length < 1 or d < 1:
        raise ValueError("k, tau, interval_length and d must all be >= 1")
    model = cost_model or CostModel()
    answer = expected_answer_size(k, interval_length, tau)
    windows = max(1.0, interval_length / tau)
    hop_queries = answer + k * windows
    q_cost = model.scale_topk(k)

    estimates: dict[str, float] = {
        # T-Base: every record visited + one recompute per durable record.
        "t-base": interval_length * model.per_record + answer * q_cost,
        # S-Base: sort everything + blocking work per record.
        "s-base": (interval_length + tau) * (model.sort_per_record + model.per_record),
        # T-Hop: Lemma 1 queries.
        "t-hop": hop_queries * q_cost,
        # S-Hop: Lemma 3 durability checks, ~2x candidate queries, blocking.
        "s-hop": hop_queries * q_cost * 1.6 + answer * model.per_candidate,
    }
    candidates: float | None = None
    if scorer_strictly_monotone and has_skyband_index:
        # Lemma 5: per-window skyband expectation, capped by the interval.
        per_window = expected_skyband_size(min(tau + 1, 100_000), d, k)
        candidates = min(windows * per_window, float(interval_length))
        # Blocking prunes most checks: charge queries ~ answer size, plus
        # retrieval + sort of the candidate set.
        estimates["s-band"] = (
            answer * q_cost
            + candidates * (model.sort_per_record + model.per_candidate)
        )
    if not scorer_monotone:
        # Without monotonicity the skyline-tree/k-skyband machinery is out;
        # (estimates only contain generic algorithms anyway).
        estimates.pop("s-band", None)

    algorithm = min(estimates, key=estimates.get)
    return PlannerDecision(
        algorithm=algorithm,
        estimates=estimates,
        expected_answer=answer,
        expected_candidates=candidates,
    )
