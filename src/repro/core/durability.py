"""Durability predicates and the maximum-duration binary search.

Section II: once an algorithm reports ``p ∈ DurTop(k, I, tau)``, the
*maximum* duration for which ``p`` stays in the top-k is found by binary
search over candidate durations, each step asking one top-k query — the
procedure is independent of which durable top-k algorithm produced ``p``.
"""

from __future__ import annotations

__all__ = ["is_durable", "max_durability", "attach_max_durations"]


def is_durable(index, k: int, t: int, tau: int, kind: str = "durability") -> bool:
    """Whether the record at ``t`` is tau-durable under ``index``'s scores.

    ``index`` is a (possibly counting) top-k building block; the check is a
    single top-k query on ``[t - tau, t]`` plus a membership test.
    """
    try:
        result = index.topk(k, t - tau, t, kind=kind)  # counting wrapper
    except TypeError:
        result = index.topk(k, t - tau, t)
    return t in result


def max_durability(index, k: int, t: int, tau_min: int = 1) -> int:
    """Largest ``tau`` for which the record at ``t`` is tau-durable.

    Durability is monotone (tau-durable implies tau'-durable for
    ``tau' <= tau``), so binary search applies. Returns ``index.n`` when
    the record is durable over the entire available history (the window is
    clipped at time 0, so every larger duration is equivalent).
    """
    if not is_durable(index, k, t, tau_min):
        raise ValueError(f"record {t} is not even {tau_min}-durable")
    if is_durable(index, k, t, max(t, tau_min)):
        return index.n  # durable across all recorded history
    lo, hi = tau_min, max(t, tau_min)  # invariant: durable at lo, not at hi
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if is_durable(index, k, t, mid):
            lo = mid
        else:
            hi = mid
    return lo


def attach_max_durations(result, index) -> None:
    """Populate ``result.durations`` for every reported durable record."""
    result.durations = {
        t: max_durability(index, result.query.k, t, result.query.tau) for t in result.ids
    }
