"""Query specification, statistics and result types.

``DurTop(k, I, tau)`` returns the tau-durable records arriving inside the
query interval ``I`` (Section II). All of ``k``, ``I``, ``tau``, the scoring
function's preference vector and the window direction are query-time
parameters, matching the paper's emphasis on interactive exploration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from enum import Enum
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.record import Dataset, Record

__all__ = ["Direction", "DurableTopKQuery", "QueryStats", "DurableTopKResult"]


class Direction(Enum):
    """Anchoring of the durability window relative to each record.

    ``PAST`` ("looking back"): the window ``[p.t - tau, p.t]`` ends at the
    record — "best in the past tau units". ``FUTURE`` ("looking ahead"):
    the window ``[p.t, p.t + tau]`` starts at the record — "stood for tau
    units before being beaten".
    """

    PAST = "past"
    FUTURE = "future"


@dataclass(frozen=True)
class DurableTopKQuery:
    """A durable top-k query ``DurTop(k, I, tau)``.

    Attributes
    ----------
    k:
        Rank threshold; a record must stay within the top ``k``.
    tau:
        Durability duration in time units (arrival slots).
    interval:
        Query interval ``I`` as an inclusive ``(lo, hi)`` pair of normalised
        arrival times, or ``None`` for the full time domain.
    direction:
        Window anchoring; see :class:`Direction`.
    """

    k: int
    tau: int
    interval: tuple[int, int] | None = None
    direction: Direction = Direction.PAST

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.tau < 1:
            raise ValueError(f"tau must be >= 1, got {self.tau}")
        if self.interval is not None:
            lo, hi = self.interval
            if lo > hi:
                raise ValueError(f"empty query interval: lo={lo} > hi={hi}")
            if lo < 0:
                raise ValueError(f"interval lo must be >= 0, got {lo}")

    def resolve_interval(self, n: int) -> tuple[int, int]:
        """Clamp the query interval to a dataset of ``n`` records."""
        if n < 1:
            raise ValueError("dataset is empty")
        if self.interval is None:
            return 0, n - 1
        lo, hi = self.interval
        if lo >= n:
            raise ValueError(f"interval lo={lo} beyond dataset size {n}")
        return lo, min(hi, n - 1)

    def reversed(self, n: int) -> "DurableTopKQuery":
        """The equivalent look-back query over the time-reversed dataset."""
        lo, hi = self.resolve_interval(n)
        flipped = (n - 1 - hi, n - 1 - lo)
        direction = Direction.PAST if self.direction is Direction.FUTURE else Direction.FUTURE
        return DurableTopKQuery(self.k, self.tau, flipped, direction)


@dataclass
class QueryStats:
    """Instrumentation counters collected while answering one query.

    ``durability_topk_queries`` and ``candidate_topk_queries`` mirror the
    unshaded/shaded decomposition of the "#top-k queries" panels of
    Figures 8–11.
    """

    durability_topk_queries: int = 0
    candidate_topk_queries: int = 0
    false_checks: int = 0
    hops: int = 0
    hop_distance: int = 0
    blocked_skips: int = 0
    blocking_intervals: int = 0
    incremental_updates: int = 0
    heap_pushes: int = 0
    candidate_set_size: int = 0
    records_sorted: int = 0
    pages_read: int = 0
    pages_written: int = 0

    @property
    def topk_queries(self) -> int:
        """Total top-k building-block invocations."""
        return self.durability_topk_queries + self.candidate_topk_queries

    def as_dict(self) -> dict[str, int]:
        """Counters as a plain dict (for reports and aggregation)."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["topk_queries"] = self.topk_queries
        return out

    def add(self, other: "QueryStats") -> None:
        """Accumulate another stats object into this one."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


@dataclass
class DurableTopKResult:
    """The answer to one durable top-k query plus run metadata.

    ``ids`` are normalised arrival times of the durable records, ascending.
    """

    ids: list[int]
    query: DurableTopKQuery
    algorithm: str
    stats: QueryStats = field(default_factory=QueryStats)
    elapsed_seconds: float = 0.0
    durations: dict[int, int] | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.ids)

    def records(self, dataset: "Dataset") -> list["Record"]:
        """Materialise the answer as :class:`Record` objects."""
        return dataset.records(self.ids)

    def describe(self, dataset: "Dataset", scorer=None, limit: int = 20) -> str:
        """Human-readable summary, one line per durable record."""
        lines = [
            f"{self.algorithm}: {len(self.ids)} durable record(s) "
            f"(k={self.query.k}, tau={self.query.tau}, "
            f"{self.stats.topk_queries} top-k queries, "
            f"{self.elapsed_seconds * 1e3:.2f} ms)"
        ]
        for t in self.ids[:limit]:
            rec = dataset.record(t)
            stamp = rec.timestamp if rec.timestamp is not None else t
            label = f" {rec.label}" if rec.label else ""
            score = f" score={scorer.score_point(dataset.values[t]):.4f}" if scorer else ""
            duration = ""
            if self.durations and t in self.durations:
                duration = f" durable-for={self.durations[t]}"
            lines.append(f"  t={t} [{stamp}]{label}{score}{duration}")
        if len(self.ids) > limit:
            lines.append(f"  ... and {len(self.ids) - limit} more")
        return "\n".join(lines)
