"""Tumbling- and sliding-window top-k comparators (Example I.1, Figure 1).

These are the two alternative query semantics the paper contrasts with
durable top-k. They are provided for the case-study example and for the
sliding-window post-processing baseline mentioned in the introduction
(filtering sliding-window results down to durable ones).
"""

from __future__ import annotations

import numpy as np

from repro.core.reference import brute_force_topk

__all__ = [
    "tumbling_window_topk",
    "sliding_window_topk",
    "sliding_window_union",
    "durable_via_sliding_postprocess",
]


def tumbling_window_topk(
    scores: np.ndarray, k: int, tau: int, offset: int = 0
) -> list[tuple[tuple[int, int], list[int]]]:
    """Top-k per non-overlapping ``tau``-slot window.

    Windows are ``[offset + i*tau, offset + (i+1)*tau - 1]``; ``offset``
    exposes the placement sensitivity the paper criticises (Figure 1.(3)).
    Returns ``(window, top-k ids)`` pairs.
    """
    scores = np.asarray(scores, dtype=float)
    n = len(scores)
    if offset < 0 or offset >= max(tau, 1):
        raise ValueError(f"offset must lie in [0, tau), got {offset}")
    out: list[tuple[tuple[int, int], list[int]]] = []
    start = 0
    if offset:
        out.append(((0, offset - 1), brute_force_topk(scores, k, 0, offset - 1)))
        start = offset
    for lo in range(start, n, tau):
        hi = min(lo + tau - 1, n - 1)
        out.append(((lo, hi), brute_force_topk(scores, k, lo, hi)))
    return out


def sliding_window_topk(
    scores: np.ndarray, k: int, tau: int
) -> list[tuple[tuple[int, int], list[int]]]:
    """Top-k for every position of a sliding ``tau + 1``-slot window.

    Window ``i`` is ``[i, i + tau]`` clipped to the domain; all positions
    are reported (the union of results is what the sliding-window query
    returns, Figure 1.(4)).
    """
    scores = np.asarray(scores, dtype=float)
    n = len(scores)
    out: list[tuple[tuple[int, int], list[int]]] = []
    for lo in range(0, max(n - tau, 1)):
        hi = min(lo + tau, n - 1)
        out.append(((lo, hi), brute_force_topk(scores, k, lo, hi)))
    return out


def sliding_window_union(scores: np.ndarray, k: int, tau: int) -> list[int]:
    """Union of top-k ids over all sliding-window positions (ascending)."""
    seen: set[int] = set()
    for _, ids in sliding_window_topk(scores, k, tau):
        seen.update(ids)
    return sorted(seen)


def durable_via_sliding_postprocess(scores: np.ndarray, k: int, lo: int, hi: int, tau: int) -> list[int]:
    """Durable top-k obtained by filtering sliding-window results.

    This is the post-processing baseline the introduction dismisses as
    prohibitively slow: enumerate every window position, then keep a record
    only when it is in the top-k of the *one* window ending at its own
    arrival time. Provided for cross-checking, not for performance.
    """
    scores = np.asarray(scores, dtype=float)
    n = len(scores)
    lo = max(lo, 0)
    hi = min(hi, n - 1)
    out = []
    for t in range(lo, hi + 1):
        ids = brute_force_topk(scores, k, t - tau, t)
        if t in ids:
            out.append(t)
    return out
