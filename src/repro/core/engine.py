"""High-level engine: build indexes once, answer many durable top-k queries.

The engine owns the per-dataset state (skyline tree, durable k-skyband
index, the reversed view for look-ahead queries) and turns a
:class:`~repro.core.query.DurableTopKQuery` plus a scoring function into a
:class:`~repro.core.query.DurableTopKResult`, dispatching to any of the
five algorithms.

``query_batch`` answers a whole same-preference batch in one shared
pass: a :class:`~repro.core.batch.BatchPlan` collapses duplicate
queries onto one execution, a :class:`~repro.index.topk.BatchTopKMemo`
shares every identical top-k window between the batch's queries (primed
with one vectorised sweep over the batch's opening windows), and each
answer — ids, per-query :class:`~repro.core.query.QueryStats`,
durations — is byte-identical to the serial ``query`` loop.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from repro.core.algorithms.base import AlgorithmContext, get_algorithm
from repro.core.batch import BatchPlan, clone_result
from repro.core.durability import attach_max_durations
from repro.core.query import Direction, DurableTopKQuery, DurableTopKResult, QueryStats
from repro.core.record import Dataset
from repro.core.session import QuerySession
from repro.index.topk import BatchTopKMemo, CountingTopKIndex, build_topk_index
from repro.obs import add_span, trace_span, tracing_active

__all__ = ["DurableTopKEngine", "EngineSession", "durable_topk"]


class EngineSession(QuerySession):
    """In-memory counterpart of :class:`repro.minidb.session.MiniDBSession`.

    Binds one scoring function to its preference-bound top-k index so that
    consecutive queries under the same preference skip the per-call index
    lookup/build entirely — the same caching interface the MiniDB stored
    procedures use (one session per preference, reusable state across the
    many top-k calls of a durable query, droppable at any time without
    correctness consequences). Obtain one via
    :meth:`DurableTopKEngine.session`.
    """

    __slots__ = ("engine", "scorer", "index", "dataset_version")

    def __init__(self, engine: "DurableTopKEngine", scorer) -> None:
        super().__init__(getattr(scorer, "u", None))
        self.engine = engine
        self.scorer = scorer
        self.index = engine._bound_index(scorer)
        self.dataset_version = engine.dataset.version

    def query(
        self,
        query: DurableTopKQuery,
        algorithm: str = "s-hop",
        with_durations: bool = False,
    ) -> DurableTopKResult:
        """Answer ``query`` under the session's bound scoring function."""
        if self.closed:
            raise RuntimeError("session is closed")
        if self.dataset_version != self.engine.dataset.version:
            # The dataset advanced an epoch under this session (e.g. a
            # newer live snapshot was swapped in): drop the stale index
            # and rebind before answering.
            self.clear()
            self.index = self.engine._bound_index(self.scorer)
            self.dataset_version = self.engine.dataset.version
        return self.engine.query(
            query, self.scorer, algorithm, with_durations, session=self
        )

    def query_batch(
        self,
        queries,
        algorithm="s-hop",
        with_durations: bool = False,
    ) -> list[DurableTopKResult]:
        """Answer a batch of queries in one shared pass (see
        :meth:`DurableTopKEngine.query_batch`); ``algorithm`` may be one
        name for the whole batch or a per-query sequence."""
        if self.closed:
            raise RuntimeError("session is closed")
        if self.dataset_version != self.engine.dataset.version:
            self.clear()
            self.index = self.engine._bound_index(self.scorer)
            self.dataset_version = self.engine.dataset.version
        return self.engine.query_batch(
            queries, self.scorer, algorithm, with_durations, session=self
        )


class DurableTopKEngine:
    """Query engine over one dataset.

    Parameters
    ----------
    dataset:
        The dataset to serve.
    index_method:
        Top-k building block: ``"score_array"`` (default; any scoring
        function) or ``"skyline_tree"`` (the paper's Appendix-A index;
        monotone functions only).
    skyband_k_max:
        When set, a :class:`~repro.index.kskyband.DurableSkybandIndex` is
        built lazily (first S-Band query) for ``k`` up to this bound.
    """

    #: Number of recently-used preference-bound indexes kept per engine.
    PREFERENCE_CACHE_SIZE = 8

    def __init__(
        self,
        dataset: Dataset,
        index_method: str = "score_array",
        skyband_k_max: int | None = 64,
    ) -> None:
        if index_method not in ("score_array", "skyline_tree", "auto"):
            raise ValueError(f"unknown index_method: {index_method!r}")
        self.dataset = dataset
        self.index_method = index_method
        self.skyband_k_max = skyband_k_max
        self._reverse_engine: DurableTopKEngine | None = None
        # Interactive exploration re-queries the same preference with
        # different k/tau/I; cache the preference-bound block (LRU).
        # Concurrent service workers share one engine, so every cache
        # mutation happens under the lock; in-flight builds are tracked in
        # ``_building`` so a cold preference is built once, not per thread.
        self._index_cache: "OrderedDict[object, object]" = OrderedDict()
        self._cache_lock = threading.Lock()
        self._building: dict[object, threading.Event] = {}
        # Heavy shared structures (skyband index, reversed engine) get
        # their own lock so their builds never stall the LRU fast path.
        self._build_lock = threading.Lock()

    # ------------------------------------------------------------------
    def _skyband_index(self):
        from repro.index.kskyband import DurableSkybandIndex

        if self.skyband_k_max is None:
            return None
        cached = self.dataset.get_cached("skyband_index")
        if cached is not None and cached.k_max >= self.skyband_k_max:
            return cached
        # Double-checked: the expensive build runs at most once per engine
        # even when many service workers first-touch S-Band concurrently.
        with self._build_lock:
            cached = self.dataset.get_cached("skyband_index")
            if cached is not None and cached.k_max >= self.skyband_k_max:
                return cached
            cached = DurableSkybandIndex(self.dataset, k_max=self.skyband_k_max)
            self.dataset.set_cached("skyband_index", cached)
        return cached

    def prepare(self, algorithms: list[str] | None = None) -> "DurableTopKEngine":
        """Eagerly build the offline indexes the given algorithms need.

        The paper treats the skyline tree and the durable k-skyband index
        as offline structures; benchmarks call this before timing queries.
        Returns ``self`` for chaining.
        """
        names = algorithms or ["s-band"]
        if self.index_method == "skyline_tree":
            from repro.index.skyline_tree import SkylineTree

            self.dataset.get_or_build("skyline_tree", lambda: SkylineTree(self.dataset))
        if "s-band" in names and self.skyband_k_max is not None:
            self._skyband_index()
        return self

    def _bound_index(self, scorer):
        """Preference-bound top-k block, LRU-cached by scorer identity.

        The cache key is the scorer's preference content when available
        (``scorer.u``), else the object itself — two equal-weight scorers
        share an entry; a mutated ``u`` array would not, so preference
        vectors are treated as immutable (as all shipped scorers do).

        The key also carries the dataset's content ``version``: frozen
        snapshots of a live dataset stamp their epoch there, so an index
        built for one epoch can never answer for another even if a newer
        snapshot is swapped into ``self.dataset`` (growing datasets are
        the one way a same-preference rebuild can become necessary).

        Thread-safe: lookups and LRU mutation happen under the cache lock,
        and a cold preference is built exactly once — concurrent
        first-touchers wait on the builder's event instead of racing
        duplicate builds or corrupting the ``OrderedDict``.
        """
        u = getattr(scorer, "u", None)
        # u-less scorers key by the object itself (kept alive by the LRU
        # entry), so two distinct parameterisations never collide.
        key = (
            type(scorer).__name__,
            scorer if u is None else tuple(u),
            self.dataset.version,
        )
        while True:
            with self._cache_lock:
                cached = self._index_cache.get(key)
                if cached is not None:
                    self._index_cache.move_to_end(key)
                    return cached
                event = self._building.get(key)
                if event is None:
                    # This thread builds; concurrent first-touchers wait.
                    event = threading.Event()
                    self._building[key] = event
                    break
            event.wait()
            # The builder published (loop re-reads the cache) or failed /
            # was evicted meanwhile (loop makes this thread the builder).
        try:
            built = build_topk_index(self.dataset, scorer, method=self.index_method)
            with self._cache_lock:
                self._index_cache[key] = built
                if len(self._index_cache) > self.PREFERENCE_CACHE_SIZE:
                    self._index_cache.popitem(last=False)
        finally:
            with self._cache_lock:
                self._building.pop(key, None)
            event.set()
        return built

    def _reversed(self) -> "DurableTopKEngine":
        with self._build_lock:
            if self._reverse_engine is None:
                self._reverse_engine = DurableTopKEngine(
                    self.dataset.reversed(),
                    index_method=self.index_method,
                    skyband_k_max=self.skyband_k_max,
                )
            return self._reverse_engine

    # ------------------------------------------------------------------
    def plan(self, query: DurableTopKQuery, scorer):
        """Cost-based algorithm choice for ``query`` (see
        :mod:`repro.core.planner`)."""
        from repro.core.planner import choose_algorithm

        lo, hi = query.resolve_interval(self.dataset.n)
        return choose_algorithm(
            k=query.k,
            tau=query.tau,
            interval_length=hi - lo + 1,
            d=self.dataset.d,
            scorer_monotone=scorer.is_monotone,
            scorer_strictly_monotone=getattr(scorer, "is_strictly_monotone", False),
            has_skyband_index=self.skyband_k_max is not None
            and query.k <= self.skyband_k_max,
        )

    def session(self, scorer) -> EngineSession:
        """Open a query session bound to ``scorer``.

        The session pins the preference-bound top-k index (and shares the
        :class:`~repro.core.session.QuerySession` caching interface with
        the MiniDB backend), so repeated queries under one scoring
        function skip all per-call setup.
        """
        scorer.validate_for(self.dataset.d)
        return EngineSession(self, scorer)

    def query(
        self,
        query: DurableTopKQuery,
        scorer,
        algorithm: str = "s-hop",
        with_durations: bool = False,
        session: EngineSession | None = None,
    ) -> DurableTopKResult:
        """Answer ``query`` under ``scorer`` with the named algorithm.

        ``algorithm="auto"`` lets the cost-based planner choose.
        ``with_durations`` additionally computes, for every durable record,
        the maximum duration it stays in the top-k (binary search,
        Section II), stored in ``result.durations``.
        ``session`` (see :meth:`session`) reuses a preference-bound index
        across calls; it must have been opened for the same ``scorer``.
        """
        scorer.validate_for(self.dataset.d)
        if session is not None and session.scorer is not scorer:
            raise ValueError(
                "session was opened for a different scoring function; "
                "open one per scorer via DurableTopKEngine.session()"
            )
        if algorithm == "auto":
            algorithm = self.plan(query, scorer).algorithm
        if query.direction is Direction.FUTURE:
            return self._query_future(query, scorer, algorithm, with_durations)
        inner = session.index if session is not None else self._bound_index(scorer)
        return self._query_past(query, scorer, algorithm, with_durations, inner)

    def _query_past(
        self, query: DurableTopKQuery, scorer, algorithm: str, with_durations: bool, inner
    ) -> DurableTopKResult:
        """Run one resolved look-back query over the given top-k block.

        ``inner`` is the preference-bound index — raw, or wrapped in a
        batch memo by :meth:`query_batch`; either way each query charges
        its own :class:`QueryStats` through its own counting wrapper.
        """
        lo, hi = query.resolve_interval(self.dataset.n)
        stats = QueryStats()
        algo = get_algorithm(algorithm)
        # Offline structure: built outside the timed region, as in the paper.
        skyband = self._skyband_index() if algo.requires_skyband else None

        with trace_span(
            "engine.query", algorithm=algorithm, k=query.k, tau=query.tau, lo=lo, hi=hi
        ) as span:
            start = time.perf_counter()
            index = CountingTopKIndex(inner, stats, timed=tracing_active())
            ctx = AlgorithmContext(
                dataset=self.dataset,
                index=index,
                scorer=scorer,
                k=query.k,
                tau=query.tau,
                lo=lo,
                hi=hi,
                stats=stats,
                skyband=skyband,
            )
            ids = algo.run(ctx)
            elapsed = time.perf_counter() - start
            span.set(
                answers=len(ids),
                durability_topk=stats.durability_topk_queries,
                candidate_topk=stats.candidate_topk_queries,
                candidate_set=stats.candidate_set_size,
            )
            if index.timed and index.calls:
                # One aggregated span per query (busy time across all
                # probes), not one span per probe.
                add_span(
                    "index.topk",
                    start=index.first_start,
                    duration=index.elapsed,
                    calls=index.calls,
                    candidates_scanned=index.scanned,
                )

        result = DurableTopKResult(
            ids=ids,
            query=query,
            algorithm=algorithm,
            stats=stats,
            elapsed_seconds=elapsed,
        )
        if with_durations:
            attach_max_durations(result, index)
        return result

    def _query_future(
        self, query: DurableTopKQuery, scorer, algorithm: str, with_durations: bool
    ) -> DurableTopKResult:
        """Look-ahead query: run look-back over the time-reversed dataset."""
        n = self.dataset.n
        engine = self._reversed()
        mirrored = query.reversed(n)
        inner = engine.query(mirrored, scorer, algorithm, with_durations)
        ids = sorted(n - 1 - t for t in inner.ids)
        durations = (
            {n - 1 - t: d for t, d in inner.durations.items()} if inner.durations else None
        )
        return DurableTopKResult(
            ids=ids,
            query=query,
            algorithm=algorithm,
            stats=inner.stats,
            elapsed_seconds=inner.elapsed_seconds,
            durations=durations,
        )

    def _resolve_algorithms(self, queries, algorithm, scorer) -> list[str]:
        """Per-query algorithm names, expanding ``"auto"`` via the planner."""
        if isinstance(algorithm, str):
            names = [algorithm] * len(queries)
        else:
            names = [str(name) for name in algorithm]
            if len(names) != len(queries):
                raise ValueError(
                    f"got {len(names)} algorithms for {len(queries)} queries"
                )
        return [
            self.plan(query, scorer).algorithm if name == "auto" else name
            for query, name in zip(queries, names)
        ]

    def query_batch(
        self,
        queries,
        scorer,
        algorithm="s-hop",
        with_durations: bool = False,
        session: EngineSession | None = None,
    ) -> list[DurableTopKResult]:
        """Answer a batch of queries under one scorer in a shared pass.

        Byte-identical to ``[self.query(q, scorer, ...) for q in queries]``
        — same ids, durations and per-query :class:`QueryStats` — but the
        work is shared three ways: identical queries execute once (their
        twins get cloned results), all distinct queries run over one
        :class:`~repro.index.topk.BatchTopKMemo` so repeated durability
        windows are answered once, and the batch's opening windows are
        pre-answered in a single vectorised pass
        (:func:`~repro.index.topk.batched_window_topk`).

        ``algorithm`` is one name for the whole batch or a sequence with
        one name per query (``"auto"`` plans per query, as in serial).
        Look-ahead queries batch among themselves over the reversed
        engine. Results come back in input order.
        """
        scorer.validate_for(self.dataset.d)
        if session is not None and session.scorer is not scorer:
            raise ValueError(
                "session was opened for a different scoring function; "
                "open one per scorer via DurableTopKEngine.session()"
            )
        queries = list(queries)
        if not queries:
            return []
        algorithms = self._resolve_algorithms(queries, algorithm, scorer)
        results: list[DurableTopKResult | None] = [None] * len(queries)
        past = [
            (i, query, algorithms[i])
            for i, query in enumerate(queries)
            if query.direction is not Direction.FUTURE
        ]
        future = [
            (i, query, algorithms[i])
            for i, query in enumerate(queries)
            if query.direction is Direction.FUTURE
        ]
        if past:
            inner = session.index if session is not None else self._bound_index(scorer)
            persistent = session.window_memo if session is not None else None
            if persistent is not None:
                # A serving backend attached a cross-batch WindowMemo:
                # bind it to this batch's index/epoch so windows answered
                # by earlier batches seed this one (stale epochs are
                # dropped inside bind()). Placement is identical to the
                # batch-scoped memo, so outputs stay byte-identical.
                memo = persistent.bind(inner, self.dataset.version)
            else:
                memo = BatchTopKMemo(inner)
            plan = BatchPlan(past, self.dataset.n)
            for k, windows in plan.opening_windows().items():
                memo.prime(k, windows)
            for entry in plan.unique:
                results[entry.position] = self._query_past(
                    entry.query, scorer, entry.algorithm, with_durations, memo
                )
            for position, source in plan.duplicates.items():
                results[position] = clone_result(
                    results[source], query=queries[position]
                )
        if future:
            self._query_future_batch(future, scorer, with_durations, results)
        return results  # type: ignore[return-value]

    def _query_future_batch(self, items, scorer, with_durations, results) -> None:
        """Batch the look-ahead queries over the reversed engine.

        Mirrors :meth:`_query_future`: each query runs as a look-back
        query on the time-reversed dataset; the whole group shares the
        reversed engine's batched pass, then ids (and durations) map back
        through ``t -> n - 1 - t``.
        """
        n = self.dataset.n
        engine = self._reversed()
        mirrored = [query.reversed(n) for _, query, _ in items]
        inner_results = engine.query_batch(
            mirrored,
            scorer,
            algorithm=[name for _, _, name in items],
            with_durations=with_durations,
        )
        for (position, query, name), inner in zip(items, inner_results):
            durations = (
                {n - 1 - t: d for t, d in inner.durations.items()}
                if inner.durations
                else None
            )
            results[position] = DurableTopKResult(
                ids=sorted(n - 1 - t for t in inner.ids),
                query=query,
                algorithm=name,
                stats=inner.stats,
                elapsed_seconds=inner.elapsed_seconds,
                durations=durations,
            )

    #: The paper's five algorithms (ablation variants are opt-in).
    PAPER_ALGORITHMS = ("t-base", "t-hop", "s-base", "s-band", "s-hop")

    def compare(
        self, query: DurableTopKQuery, scorer, algorithms: list[str] | None = None
    ) -> dict[str, DurableTopKResult]:
        """Run several algorithms on the same query (they must agree)."""
        names = algorithms or list(self.PAPER_ALGORITHMS)
        out: dict[str, DurableTopKResult] = {}
        for name in names:
            algo = get_algorithm(name)
            if algo.requires_monotone and not scorer.is_monotone:
                continue
            if name == "s-band" and not getattr(scorer, "is_strictly_monotone", False):
                continue
            out[name] = self.query(query, scorer, algorithm=name)
        return out


def durable_topk(
    dataset: Dataset,
    scorer,
    k: int,
    tau: int,
    interval: tuple[int, int] | None = None,
    direction: Direction = Direction.PAST,
    algorithm: str = "s-hop",
    with_durations: bool = False,
) -> DurableTopKResult:
    """One-shot convenience wrapper around :class:`DurableTopKEngine`.

    >>> import numpy as np
    >>> from repro.core.record import Dataset
    >>> from repro.scoring import LinearPreference
    >>> data = Dataset(np.array([[5.0], [1.0], [7.0], [2.0]]))
    >>> durable_topk(data, LinearPreference([1.0]), k=1, tau=2).ids
    [0, 2]
    """
    engine = DurableTopKEngine(dataset)
    query = DurableTopKQuery(k=k, tau=tau, interval=interval, direction=direction)
    return engine.query(query, scorer, algorithm=algorithm, with_durations=with_durations)
