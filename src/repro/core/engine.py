"""High-level engine: build indexes once, answer many durable top-k queries.

The engine owns the per-dataset state (skyline tree, durable k-skyband
index, the reversed view for look-ahead queries) and turns a
:class:`~repro.core.query.DurableTopKQuery` plus a scoring function into a
:class:`~repro.core.query.DurableTopKResult`, dispatching to any of the
five algorithms.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from repro.core.algorithms.base import AlgorithmContext, get_algorithm
from repro.core.durability import attach_max_durations
from repro.core.query import Direction, DurableTopKQuery, DurableTopKResult, QueryStats
from repro.core.record import Dataset
from repro.core.session import QuerySession
from repro.index.topk import CountingTopKIndex, build_topk_index

__all__ = ["DurableTopKEngine", "EngineSession", "durable_topk"]


class EngineSession(QuerySession):
    """In-memory counterpart of :class:`repro.minidb.session.MiniDBSession`.

    Binds one scoring function to its preference-bound top-k index so that
    consecutive queries under the same preference skip the per-call index
    lookup/build entirely — the same caching interface the MiniDB stored
    procedures use (one session per preference, reusable state across the
    many top-k calls of a durable query, droppable at any time without
    correctness consequences). Obtain one via
    :meth:`DurableTopKEngine.session`.
    """

    __slots__ = ("engine", "scorer", "index", "dataset_version")

    def __init__(self, engine: "DurableTopKEngine", scorer) -> None:
        super().__init__(getattr(scorer, "u", None))
        self.engine = engine
        self.scorer = scorer
        self.index = engine._bound_index(scorer)
        self.dataset_version = engine.dataset.version

    def query(
        self,
        query: DurableTopKQuery,
        algorithm: str = "s-hop",
        with_durations: bool = False,
    ) -> DurableTopKResult:
        """Answer ``query`` under the session's bound scoring function."""
        if self.closed:
            raise RuntimeError("session is closed")
        if self.dataset_version != self.engine.dataset.version:
            # The dataset advanced an epoch under this session (e.g. a
            # newer live snapshot was swapped in): drop the stale index
            # and rebind before answering.
            self.clear()
            self.index = self.engine._bound_index(self.scorer)
            self.dataset_version = self.engine.dataset.version
        return self.engine.query(
            query, self.scorer, algorithm, with_durations, session=self
        )


class DurableTopKEngine:
    """Query engine over one dataset.

    Parameters
    ----------
    dataset:
        The dataset to serve.
    index_method:
        Top-k building block: ``"score_array"`` (default; any scoring
        function) or ``"skyline_tree"`` (the paper's Appendix-A index;
        monotone functions only).
    skyband_k_max:
        When set, a :class:`~repro.index.kskyband.DurableSkybandIndex` is
        built lazily (first S-Band query) for ``k`` up to this bound.
    """

    #: Number of recently-used preference-bound indexes kept per engine.
    PREFERENCE_CACHE_SIZE = 8

    def __init__(
        self,
        dataset: Dataset,
        index_method: str = "score_array",
        skyband_k_max: int | None = 64,
    ) -> None:
        if index_method not in ("score_array", "skyline_tree", "auto"):
            raise ValueError(f"unknown index_method: {index_method!r}")
        self.dataset = dataset
        self.index_method = index_method
        self.skyband_k_max = skyband_k_max
        self._reverse_engine: DurableTopKEngine | None = None
        # Interactive exploration re-queries the same preference with
        # different k/tau/I; cache the preference-bound block (LRU).
        # Concurrent service workers share one engine, so every cache
        # mutation happens under the lock; in-flight builds are tracked in
        # ``_building`` so a cold preference is built once, not per thread.
        self._index_cache: "OrderedDict[object, object]" = OrderedDict()
        self._cache_lock = threading.Lock()
        self._building: dict[object, threading.Event] = {}
        # Heavy shared structures (skyband index, reversed engine) get
        # their own lock so their builds never stall the LRU fast path.
        self._build_lock = threading.Lock()

    # ------------------------------------------------------------------
    def _skyband_index(self):
        from repro.index.kskyband import DurableSkybandIndex

        if self.skyband_k_max is None:
            return None
        cached = self.dataset.get_cached("skyband_index")
        if cached is not None and cached.k_max >= self.skyband_k_max:
            return cached
        # Double-checked: the expensive build runs at most once per engine
        # even when many service workers first-touch S-Band concurrently.
        with self._build_lock:
            cached = self.dataset.get_cached("skyband_index")
            if cached is not None and cached.k_max >= self.skyband_k_max:
                return cached
            cached = DurableSkybandIndex(self.dataset, k_max=self.skyband_k_max)
            self.dataset.set_cached("skyband_index", cached)
        return cached

    def prepare(self, algorithms: list[str] | None = None) -> "DurableTopKEngine":
        """Eagerly build the offline indexes the given algorithms need.

        The paper treats the skyline tree and the durable k-skyband index
        as offline structures; benchmarks call this before timing queries.
        Returns ``self`` for chaining.
        """
        names = algorithms or ["s-band"]
        if self.index_method == "skyline_tree":
            from repro.index.skyline_tree import SkylineTree

            self.dataset.get_or_build("skyline_tree", lambda: SkylineTree(self.dataset))
        if "s-band" in names and self.skyband_k_max is not None:
            self._skyband_index()
        return self

    def _bound_index(self, scorer):
        """Preference-bound top-k block, LRU-cached by scorer identity.

        The cache key is the scorer's preference content when available
        (``scorer.u``), else the object itself — two equal-weight scorers
        share an entry; a mutated ``u`` array would not, so preference
        vectors are treated as immutable (as all shipped scorers do).

        The key also carries the dataset's content ``version``: frozen
        snapshots of a live dataset stamp their epoch there, so an index
        built for one epoch can never answer for another even if a newer
        snapshot is swapped into ``self.dataset`` (growing datasets are
        the one way a same-preference rebuild can become necessary).

        Thread-safe: lookups and LRU mutation happen under the cache lock,
        and a cold preference is built exactly once — concurrent
        first-touchers wait on the builder's event instead of racing
        duplicate builds or corrupting the ``OrderedDict``.
        """
        u = getattr(scorer, "u", None)
        # u-less scorers key by the object itself (kept alive by the LRU
        # entry), so two distinct parameterisations never collide.
        key = (
            type(scorer).__name__,
            scorer if u is None else tuple(u),
            self.dataset.version,
        )
        while True:
            with self._cache_lock:
                cached = self._index_cache.get(key)
                if cached is not None:
                    self._index_cache.move_to_end(key)
                    return cached
                event = self._building.get(key)
                if event is None:
                    # This thread builds; concurrent first-touchers wait.
                    event = threading.Event()
                    self._building[key] = event
                    break
            event.wait()
            # The builder published (loop re-reads the cache) or failed /
            # was evicted meanwhile (loop makes this thread the builder).
        try:
            built = build_topk_index(self.dataset, scorer, method=self.index_method)
            with self._cache_lock:
                self._index_cache[key] = built
                if len(self._index_cache) > self.PREFERENCE_CACHE_SIZE:
                    self._index_cache.popitem(last=False)
        finally:
            with self._cache_lock:
                self._building.pop(key, None)
            event.set()
        return built

    def _reversed(self) -> "DurableTopKEngine":
        with self._build_lock:
            if self._reverse_engine is None:
                self._reverse_engine = DurableTopKEngine(
                    self.dataset.reversed(),
                    index_method=self.index_method,
                    skyband_k_max=self.skyband_k_max,
                )
            return self._reverse_engine

    # ------------------------------------------------------------------
    def plan(self, query: DurableTopKQuery, scorer):
        """Cost-based algorithm choice for ``query`` (see
        :mod:`repro.core.planner`)."""
        from repro.core.planner import choose_algorithm

        lo, hi = query.resolve_interval(self.dataset.n)
        return choose_algorithm(
            k=query.k,
            tau=query.tau,
            interval_length=hi - lo + 1,
            d=self.dataset.d,
            scorer_monotone=scorer.is_monotone,
            scorer_strictly_monotone=getattr(scorer, "is_strictly_monotone", False),
            has_skyband_index=self.skyband_k_max is not None
            and query.k <= self.skyband_k_max,
        )

    def session(self, scorer) -> EngineSession:
        """Open a query session bound to ``scorer``.

        The session pins the preference-bound top-k index (and shares the
        :class:`~repro.core.session.QuerySession` caching interface with
        the MiniDB backend), so repeated queries under one scoring
        function skip all per-call setup.
        """
        scorer.validate_for(self.dataset.d)
        return EngineSession(self, scorer)

    def query(
        self,
        query: DurableTopKQuery,
        scorer,
        algorithm: str = "s-hop",
        with_durations: bool = False,
        session: EngineSession | None = None,
    ) -> DurableTopKResult:
        """Answer ``query`` under ``scorer`` with the named algorithm.

        ``algorithm="auto"`` lets the cost-based planner choose.
        ``with_durations`` additionally computes, for every durable record,
        the maximum duration it stays in the top-k (binary search,
        Section II), stored in ``result.durations``.
        ``session`` (see :meth:`session`) reuses a preference-bound index
        across calls; it must have been opened for the same ``scorer``.
        """
        scorer.validate_for(self.dataset.d)
        if session is not None and session.scorer is not scorer:
            raise ValueError(
                "session was opened for a different scoring function; "
                "open one per scorer via DurableTopKEngine.session()"
            )
        if algorithm == "auto":
            algorithm = self.plan(query, scorer).algorithm
        if query.direction is Direction.FUTURE:
            return self._query_future(query, scorer, algorithm, with_durations)

        n = self.dataset.n
        lo, hi = query.resolve_interval(n)
        stats = QueryStats()
        algo = get_algorithm(algorithm)
        # Offline structure: built outside the timed region, as in the paper.
        skyband = self._skyband_index() if algo.requires_skyband else None

        start = time.perf_counter()
        inner = session.index if session is not None else self._bound_index(scorer)
        index = CountingTopKIndex(inner, stats)
        ctx = AlgorithmContext(
            dataset=self.dataset,
            index=index,
            scorer=scorer,
            k=query.k,
            tau=query.tau,
            lo=lo,
            hi=hi,
            stats=stats,
            skyband=skyband,
        )
        ids = algo.run(ctx)
        elapsed = time.perf_counter() - start

        result = DurableTopKResult(
            ids=ids,
            query=query,
            algorithm=algorithm,
            stats=stats,
            elapsed_seconds=elapsed,
        )
        if with_durations:
            attach_max_durations(result, index)
        return result

    def _query_future(
        self, query: DurableTopKQuery, scorer, algorithm: str, with_durations: bool
    ) -> DurableTopKResult:
        """Look-ahead query: run look-back over the time-reversed dataset."""
        n = self.dataset.n
        engine = self._reversed()
        mirrored = query.reversed(n)
        inner = engine.query(mirrored, scorer, algorithm, with_durations)
        ids = sorted(n - 1 - t for t in inner.ids)
        durations = (
            {n - 1 - t: d for t, d in inner.durations.items()} if inner.durations else None
        )
        return DurableTopKResult(
            ids=ids,
            query=query,
            algorithm=algorithm,
            stats=inner.stats,
            elapsed_seconds=inner.elapsed_seconds,
            durations=durations,
        )

    #: The paper's five algorithms (ablation variants are opt-in).
    PAPER_ALGORITHMS = ("t-base", "t-hop", "s-base", "s-band", "s-hop")

    def compare(
        self, query: DurableTopKQuery, scorer, algorithms: list[str] | None = None
    ) -> dict[str, DurableTopKResult]:
        """Run several algorithms on the same query (they must agree)."""
        names = algorithms or list(self.PAPER_ALGORITHMS)
        out: dict[str, DurableTopKResult] = {}
        for name in names:
            algo = get_algorithm(name)
            if algo.requires_monotone and not scorer.is_monotone:
                continue
            if name == "s-band" and not getattr(scorer, "is_strictly_monotone", False):
                continue
            out[name] = self.query(query, scorer, algorithm=name)
        return out


def durable_topk(
    dataset: Dataset,
    scorer,
    k: int,
    tau: int,
    interval: tuple[int, int] | None = None,
    direction: Direction = Direction.PAST,
    algorithm: str = "s-hop",
    with_durations: bool = False,
) -> DurableTopKResult:
    """One-shot convenience wrapper around :class:`DurableTopKEngine`.

    >>> import numpy as np
    >>> from repro.core.record import Dataset
    >>> from repro.scoring import LinearPreference
    >>> data = Dataset(np.array([[5.0], [1.0], [7.0], [2.0]]))
    >>> durable_topk(data, LinearPreference([1.0]), k=1, tau=2).ids
    [0, 2]
    """
    engine = DurableTopKEngine(dataset)
    query = DurableTopKQuery(k=k, tau=tau, interval=interval, direction=direction)
    return engine.query(query, scorer, algorithm=algorithm, with_durations=with_durations)
