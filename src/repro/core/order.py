"""The canonical total order used everywhere in the library.

The paper assumes distinct scores. We instead rank by the lexicographic key
``(score, arrival time)`` descending — higher score wins, and among equal
scores the *later* arrival wins. Arrival times are unique, so this is a
total order, which buys determinism and exact cross-algorithm equality.

For look-back durability this coincides with the paper's semantics: every
other record in ``[p.t - tau, p.t]`` arrived no later than ``p``, so a tie
never beats ``p`` — "fewer than k records strictly better in the window" is
exactly membership of ``p`` in the canonical top-k of its own window.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sort_ids_canonical", "beats", "order_key"]


def order_key(score: float, t: int) -> tuple[float, int]:
    """The canonical comparison key of a record (compare descending)."""
    return (score, t)


def beats(score_a: float, t_a: int, score_b: float, t_b: int) -> bool:
    """True iff record ``a`` outranks record ``b`` (``a ≻ b``)."""
    return (score_a, t_a) > (score_b, t_b)


def sort_ids_canonical(ids: np.ndarray, scores: np.ndarray) -> np.ndarray:
    """Sort record ids best-first under the canonical order.

    ``scores`` are the scores *of those ids* (same length as ``ids``).
    """
    ids = np.asarray(ids)
    scores = np.asarray(scores, dtype=float)
    if len(ids) != len(scores):
        raise ValueError(f"ids ({len(ids)}) and scores ({len(scores)}) differ in length")
    order = np.lexsort((ids, scores))[::-1]
    return ids[order]
