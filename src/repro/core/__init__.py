"""Core durable top-k machinery: data model, query types and algorithms."""

from repro.core.batch import BatchPlan, clone_result
from repro.core.blocking import BlockingIntervals
from repro.core.durability import is_durable, max_durability
from repro.core.engine import DurableTopKEngine, durable_topk
from repro.core.query import Direction, DurableTopKQuery, DurableTopKResult, QueryStats
from repro.core.record import Dataset, Record
from repro.core.reference import (
    brute_force_durable_topk,
    brute_force_topk,
    strictly_better_counts,
)
from repro.core.windows import sliding_window_topk, tumbling_window_topk

__all__ = [
    "Dataset",
    "Record",
    "Direction",
    "DurableTopKQuery",
    "DurableTopKResult",
    "QueryStats",
    "DurableTopKEngine",
    "durable_topk",
    "BatchPlan",
    "clone_result",
    "BlockingIntervals",
    "is_durable",
    "max_durability",
    "brute_force_durable_topk",
    "brute_force_topk",
    "strictly_better_counts",
    "sliding_window_topk",
    "tumbling_window_topk",
]
