"""Batch planning for same-preference durable top-k query batches.

The serving layer already groups Zipfian traffic by preference; this
module turns one such group into an execution plan the engine (and the
live dataset) can run in a single shared pass:

* **Deduplication** — identical ``(algorithm, k, tau, window, direction)``
  queries execute once; duplicates receive a cloned result. Valid because
  every algorithm in this library is deterministic given the dataset and
  preference.
* **Alignment** — distinct queries are sorted by ``(algorithm, tau, k)``
  and descending window, so same-``tau`` trajectories run back to back:
  T-Hop visits every durable record in its range, which means two
  same-parameter trajectories coincide from the first durable record
  below ``min(hi)`` on — and a shared
  :class:`~repro.index.topk.BatchTopKMemo` answers the overlap once.
* **Opening windows** — the first durability window of every T-Base /
  T-Hop query, which :meth:`BatchTopKMemo.prime` answers in one
  vectorised ``np.partition`` pass before the trajectories start.

The plan itself never executes anything: byte-identity of the batched
path reduces to "each distinct query runs exactly the serial code over a
memo that only short-circuits repeated identical calls".
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.query import DurableTopKQuery, DurableTopKResult

__all__ = ["BatchEntry", "BatchPlan", "clone_result"]

#: Algorithms whose first building-block call is the durability window
#: ``topk(k, hi - tau, hi)`` — the windows worth priming vectorised.
_WINDOW_OPENERS = ("t-base", "t-hop")


@dataclass(frozen=True)
class BatchEntry:
    """One distinct query of a batch, with its resolved window."""

    position: int  #: index into the original batch
    query: DurableTopKQuery
    algorithm: str
    lo: int
    hi: int


class BatchPlan:
    """Dedupe and order a batch of same-preference queries.

    Parameters
    ----------
    items:
        ``(position, query, algorithm)`` triples; ``algorithm`` must
        already be resolved (no ``"auto"``).
    n:
        Dataset size, used to resolve query intervals — two queries whose
        raw intervals differ but resolve identically deduplicate.
    """

    def __init__(self, items, n: int) -> None:
        self.n = n
        first_of: dict[tuple, int] = {}
        #: Duplicate position -> the position whose result it clones.
        self.duplicates: dict[int, int] = {}
        unique: list[BatchEntry] = []
        for position, query, algorithm in items:
            lo, hi = query.resolve_interval(n)
            signature = (algorithm, query.k, query.tau, lo, hi, query.direction)
            source = first_of.get(signature)
            if source is not None:
                self.duplicates[position] = source
                continue
            first_of[signature] = position
            unique.append(BatchEntry(position, query, algorithm, lo, hi))
        # Same-tau trajectories share their suffix; running them
        # adjacent and highest-window-first maximises memo locality.
        unique.sort(key=lambda e: (e.algorithm, e.query.tau, e.query.k, -e.hi, -e.lo))
        self.unique = unique

    def __len__(self) -> int:
        return len(self.unique) + len(self.duplicates)

    def opening_windows(self) -> dict[int, list[tuple[int, int]]]:
        """Per-``k`` first durability windows of the T-family entries.

        These are exactly the first calls the trajectories will issue
        (``topk(k, hi - tau, hi)``), keyed the way the memo keys them —
        unclamped, as the algorithms pass them.
        """
        windows: dict[int, list[tuple[int, int]]] = {}
        seen: set[tuple[int, int, int]] = set()
        for entry in self.unique:
            if entry.algorithm not in _WINDOW_OPENERS:
                continue
            key = (entry.query.k, entry.hi - entry.query.tau, entry.hi)
            if key in seen:
                continue
            seen.add(key)
            windows.setdefault(entry.query.k, []).append((key[1], key[2]))
        return windows


def clone_result(
    result: DurableTopKResult, query: DurableTopKQuery | None = None
) -> DurableTopKResult:
    """An independent copy of ``result`` for a deduplicated twin query.

    Everything observable is copied (ids, stats, durations, extra) so
    callers may mutate their response without aliasing the original;
    ``query`` substitutes the twin's own (equal-valued) query object.
    """
    return DurableTopKResult(
        ids=list(result.ids),
        query=query if query is not None else result.query,
        algorithm=result.algorithm,
        stats=replace(result.stats),
        elapsed_seconds=result.elapsed_seconds,
        durations=None if result.durations is None else dict(result.durations),
        extra=dict(result.extra),
    )
