"""Online durable top-k monitoring over an append-only stream.

The paper frames durable top-k as the *offline* version of continuous
top-k monitoring over sliding windows (Mouratidis et al. [11], the basis
of T-Base). This module provides the online counterpart:

* **Look-back durability is decidable on arrival** — the window
  ``[t - tau, t]`` is complete the moment the record at ``t`` arrives, so
  :class:`StreamingDurableMonitor` reports each arriving record's
  durability immediately.
* **Look-ahead durability resolves later** — a record is
  ``tau``-look-ahead-durable only once ``tau`` further records arrive
  without ``k`` of them beating it. :meth:`append` returns the earlier
  records whose fate the new arrival decided.

Both directions use the Skyband Maintenance idea the paper credits to
[11] (footnote 3): keep a window record only while fewer than ``k``
*later* records beat it — once ``k`` newer-and-better records exist, the
record can neither re-enter a top-k nor change any future durability
decision (those same ``k`` records outrank anything it would outrank), so
it is evicted. Every counter is incremented at most ``k`` times before
eviction, giving amortised ``O(k + log w)`` work per arrival (``w`` =
window size).

Tie handling mirrors the offline engine's canonical order: in the
look-back direction a new arrival beats earlier equal scores; in the
look-ahead direction it does not (the earlier record "stood until
*strictly* beaten"), matching the offline FUTURE-direction semantics
obtained by time reversal.

The monitor's outputs are tested for exact equality against the offline
oracles.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass

__all__ = ["StreamingDurableMonitor", "LookaheadResolution"]


@dataclass(frozen=True)
class LookaheadResolution:
    """The fate of one earlier record, decided by a later arrival."""

    t: int
    durable: bool
    #: Arrival time that decided it: the record completing the window for
    #: survivors, the k-th defeating record for casualties.
    decided_at: int


class _Skyband:
    """SMA-style k-skyband over (arrival, score) pairs.

    Entries are kept in a score-sorted list with a beaten-counter each;
    ``observe`` registers a new arrival's blows, ``expire_before`` retires
    entries that slid out of the window.
    """

    def __init__(self, k: int, tie_beats: bool) -> None:
        self.k = k
        self.tie_beats = tie_beats
        self._keys: list[tuple[float, int]] = []  # ascending (score, t)
        self._live: dict[int, list] = {}  # t -> [beaten_count, score]
        self._times: deque[int] = deque()  # arrival order, lazily pruned

    def __len__(self) -> int:
        return len(self._keys)

    def contains(self, t: int) -> bool:
        return t in self._live

    def strictly_better(self, score: float) -> int:
        """How many live entries have a strictly higher score."""
        pos = bisect.bisect_right(self._keys, (score, float("inf")))
        return len(self._keys) - pos

    def _beaten_prefix(self, score: float) -> int:
        """Length of the key prefix the newcomer beats."""
        if self.tie_beats:
            return bisect.bisect_right(self._keys, (score, float("inf")))
        return bisect.bisect_left(self._keys, (score, float("-inf")))

    def observe(self, t: int, score: float) -> list[int]:
        """Insert arrival ``(t, score)``; return entries it evicted."""
        beaten_pos = self._beaten_prefix(score)
        evicted: list[int] = []
        keep: list[tuple[float, int]] = []
        for key in self._keys[:beaten_pos]:
            entry_t = key[1]
            entry = self._live[entry_t]
            entry[0] += 1
            if entry[0] >= self.k:
                del self._live[entry_t]
                evicted.append(entry_t)
            else:
                keep.append(key)
        if len(keep) != beaten_pos:
            self._keys[:beaten_pos] = keep
        bisect.insort(self._keys, (score, t))
        self._live[t] = [0, score]
        self._times.append(t)
        return evicted

    def remove(self, t: int) -> None:
        """Retire one entry by arrival time (no-op when already gone)."""
        entry = self._live.pop(t, None)
        if entry is None:
            return
        pos = bisect.bisect_left(self._keys, (entry[1], t))
        del self._keys[pos]

    def expire_before(self, cutoff: int) -> None:
        """Retire entries with arrival time ``< cutoff`` (amortised O(1))."""
        while self._times and self._times[0] < cutoff:
            self.remove(self._times.popleft())

    def topk_ids(self) -> list[int]:
        """The top-k live arrival times, best first (canonical order)."""
        best = self._keys[-self.k :][::-1] if self.k <= len(self._keys) else self._keys[::-1]
        return [t for _, t in best]


class StreamingDurableMonitor:
    """Maintain durable top-k status for an append-only score stream.

    Parameters
    ----------
    k, tau:
        Fixed parameters of the monitored durable top-k query.
    track_lookahead:
        Also resolve look-ahead (window-after-arrival) durability.

    Example
    -------
    >>> monitor = StreamingDurableMonitor(k=1, tau=2)
    >>> [monitor.append(s)[0] for s in (5.0, 3.0, 6.0, 4.0)]
    [True, False, True, False]
    """

    def __init__(self, k: int, tau: int, track_lookahead: bool = False) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if tau < 1:
            raise ValueError(f"tau must be >= 1, got {tau}")
        self.k = k
        self.tau = tau
        self.track_lookahead = track_lookahead
        self.n = 0
        self._band = _Skyband(k, tie_beats=True)
        self._durable: list[int] = []
        # Look-ahead: candidates double as blow-dealers; strict ties only.
        self._ahead = _Skyband(k, tie_beats=False)
        self._ahead_queue: deque[int] = deque()
        self._ahead_dead: set[int] = set()

    @property
    def durable_ids(self) -> list[int]:
        """All look-back durable arrival times seen so far."""
        return list(self._durable)

    def append(self, score: float) -> tuple[bool, list[LookaheadResolution]]:
        """Process the next arrival.

        Returns ``(lookback_durable, lookahead_resolutions)``; the list is
        empty unless ``track_lookahead`` is on.
        """
        t = self.n
        self.n += 1
        score = float(score)

        self._band.expire_before(t - self.tau)
        durable = self._band.strictly_better(score) < self.k
        if durable:
            self._durable.append(t)
        self._band.observe(t, score)

        resolutions: list[LookaheadResolution] = []
        if self.track_lookahead:
            resolutions = self._advance_lookahead(t, score)
        return durable, resolutions

    def _advance_lookahead(self, t: int, score: float) -> list[LookaheadResolution]:
        out: list[LookaheadResolution] = []
        # The new arrival may deal the k-th blow to pending candidates.
        for dead_t in self._ahead.observe(t, score):
            self._ahead_dead.add(dead_t)
            out.append(LookaheadResolution(dead_t, durable=False, decided_at=t))
        # Candidates whose full window has now passed survive.
        while self._ahead_queue and t - self._ahead_queue[0] >= self.tau:
            cand = self._ahead_queue.popleft()
            if cand in self._ahead_dead:
                self._ahead_dead.discard(cand)
                continue
            out.append(LookaheadResolution(cand, durable=True, decided_at=t))
            self._ahead.remove(cand)  # settled; stop tracking
        self._ahead_queue.append(t)
        return out

    def finish(self) -> list[LookaheadResolution]:
        """End of stream: still-pending records have clipped windows and
        count as durable, matching the offline engine's edge semantics."""
        out: list[LookaheadResolution] = []
        while self._ahead_queue:
            cand = self._ahead_queue.popleft()
            if cand in self._ahead_dead:
                self._ahead_dead.discard(cand)
                continue
            out.append(LookaheadResolution(cand, durable=True, decided_at=self.n - 1))
            self._ahead.remove(cand)
        return out

    def window_topk(self) -> list[int]:
        """Arrival times of the current look-back window's top-k."""
        return self._band.topk_ids()
