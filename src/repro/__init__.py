"""repro — durable top-k queries over instant-stamped temporal records.

A faithful, pure-Python reproduction of "Durable Top-K Instant-Stamped
Temporal Records with User-Specified Scoring Functions" (ICDE 2021).

Quickstart::

    import numpy as np
    from repro import Dataset, LinearPreference, durable_topk

    data = Dataset(np.random.rand(10_000, 2))
    result = durable_topk(data, LinearPreference([0.5, 0.5]), k=5, tau=500)
    print(result.ids)           # arrival times of the durable records
    print(result.stats.topk_queries)

See README.md for the full tour and DESIGN.md for the system inventory.
"""

from repro.core.claims import claim_for, claims_for_result
from repro.core.engine import DurableTopKEngine, durable_topk
from repro.core.planner import choose_algorithm
from repro.core.query import Direction, DurableTopKQuery, DurableTopKResult, QueryStats
from repro.core.record import Dataset, Record
from repro.core.streaming import StreamingDurableMonitor
from repro.core.timeline import Timeline
from repro.data.loader import load_csv
from repro.ingest.live import LiveDataset
from repro.scoring import (
    CosinePreference,
    LinearPreference,
    MonotonePreference,
    ScoringFunction,
    SingleAttribute,
    random_preference,
)

__version__ = "1.0.0"

__all__ = [
    "Dataset",
    "Record",
    "Direction",
    "DurableTopKQuery",
    "DurableTopKResult",
    "QueryStats",
    "DurableTopKEngine",
    "durable_topk",
    "LiveDataset",
    "StreamingDurableMonitor",
    "Timeline",
    "choose_algorithm",
    "claim_for",
    "claims_for_result",
    "load_csv",
    "ScoringFunction",
    "SingleAttribute",
    "LinearPreference",
    "MonotonePreference",
    "CosinePreference",
    "random_preference",
    "__version__",
]
