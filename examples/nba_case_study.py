"""The Figure 1 case study: durable vs tumbling vs sliding top-k.

Finds "noteworthy rebound performances" in a synthetic NBA history and
contrasts the three query semantics the paper discusses:

* durable top-k  — best within the 5 "seasons" leading up to the game;
* tumbling-window — best per fixed 5-season partition (placement-sensitive);
* sliding-window  — union of bests over all window positions (overwhelming).

Run:  python examples/nba_case_study.py
"""


from repro import DurableTopKQuery, DurableTopKEngine, SingleAttribute
from repro.core.windows import sliding_window_union, tumbling_window_topk
from repro.data import generate_nba

SEASONS_PER_WINDOW = 5

nba = generate_nba(20_000, seed=7)
rebounds_dim = nba.attribute_names.index("rebounds")
scorer = SingleAttribute(rebounds_dim)
scores = scorer.scores(nba.values)

# A "5-year window" in record counts: records per season * 5.
records_per_season = nba.n // (2019 - 1983 + 1)
tau = records_per_season * SEASONS_PER_WINDOW

engine = DurableTopKEngine(nba)
durable = engine.query(DurableTopKQuery(k=1, tau=tau), scorer, algorithm="t-hop")

print(f"=== Durable top-1 rebound performances (tau = {SEASONS_PER_WINDOW} seasons) ===")
print(f"{len(durable.ids)} records; the best-of-the-last-5-seasons each time:\n")
shown = [t for t in durable.ids if scores[t] >= 15]  # skip the early ramp-up
for t in shown[-12:]:
    rec = nba.record(t)
    print(f"  {rec.timestamp}  {rec.label:12s} {int(scores[t]):3d} rebounds "
          f"(best of the {SEASONS_PER_WINDOW} seasons before)")

# ---------------------------------------------------------------------------
# Tumbling windows: results change with window placement — the paper's
# complaint about cherry-picked windows.
# ---------------------------------------------------------------------------
print("\n=== Tumbling-window top-1 (placement-sensitive) ===")
for offset_label, offset in (("aligned", 0), ("shifted", tau // 2)):
    winners = {
        ids[0] for _, ids in tumbling_window_topk(scores, 1, tau, offset=offset) if ids
    }
    flagged = sorted(winners)
    print(f"  placement {offset_label:8s}: {len(flagged)} winners, e.g. "
          + ", ".join(
              f"{nba.record(t).label}({int(scores[t])})" for t in flagged[-4:]
          ))
overlap_a = {ids[0] for _, ids in tumbling_window_topk(scores, 1, tau, 0) if ids}
overlap_b = {ids[0] for _, ids in tumbling_window_topk(scores, 1, tau, tau // 2) if ids}
print(f"  winners common to both placements: {len(overlap_a & overlap_b)} "
      f"of {len(overlap_a | overlap_b)} — placement matters.")

# ---------------------------------------------------------------------------
# Sliding windows: placement-insensitive but overwhelming. At k=3 the
# union of per-position top-3 sets dwarfs the durable result (and records
# flicker in and out as the window slides — the discontinuity the paper
# illustrates with Drummond's 29-rebound game).
# ---------------------------------------------------------------------------
print("\n=== Sliding-window vs durable at k=3 (full-window region) ===")
union3 = [t for t in sliding_window_union(scores, 3, tau) if t >= tau]
durable3 = engine.query(
    DurableTopKQuery(k=3, tau=tau, interval=(tau, nba.n - 1)), scorer, algorithm="t-hop"
)
print(f"  sliding union: {len(union3)} records;  durable top-3: {len(durable3.ids)} —")
print("  the sliding answer is diluted with records that merely shared a")
print("  window with a peak; the durable answer names the peaks themselves.")
print(f"  every durable record appears in the sliding union: "
      f"{set(durable3.ids) <= set(union3)}")
