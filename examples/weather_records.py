"""Weather scenario from the paper's introduction.

"In late January 2019, an extreme cold wave hit the Midwestern United
States, and brought the coldest temperatures in the past 20 years to
most locations in the affected region" — a durable top-k query over
historical daily temperatures, ranking by *coldness*.

Ranking by coldness means a negative-weight scoring function — not
monotone, which exercises the library's arbitrary-scorer path (S-Band is
unavailable; the hop algorithms work unchanged).

Run:  python examples/weather_records.py
"""

import numpy as np

from repro import Dataset, DurableTopKEngine, DurableTopKQuery, LinearPreference

# ---------------------------------------------------------------------------
# Synthesise ~55 years of daily minimum temperatures for one station:
# seasonal cycle + slow warming trend + weather noise + rare cold snaps.
# ---------------------------------------------------------------------------
rng = np.random.default_rng(2019)
years = 55
n = years * 365
day = np.arange(n)
seasonal = -12.0 * np.cos(2 * np.pi * (day % 365) / 365.0)
warming = 0.00008 * day  # ~1.6 C over the record
noise = rng.normal(0, 4.0, n)
snaps = np.zeros(n)
for _ in range(40):  # occasional multi-day cold snaps
    start = rng.integers(0, n - 7)
    snaps[start : start + rng.integers(2, 7)] -= rng.uniform(6, 18)
temps = 8.0 + seasonal + warming + noise + snaps

labels = [f"y{1965 + d // 365}-d{d % 365:03d}" for d in day]
station = Dataset(
    temps[:, None],
    timestamps=labels,
    attribute_names=["min_temp_c"],
    name="station",
)

# Rank by coldness: score = -temperature (negative weight).
coldness = LinearPreference([-1.0])
engine = DurableTopKEngine(station)

# ---------------------------------------------------------------------------
# "Coldest temperature in the past 20 years" days.
# ---------------------------------------------------------------------------
tau20 = 20 * 365
res = engine.query(
    DurableTopKQuery(k=1, tau=tau20), coldness, algorithm="t-hop", with_durations=True
)
print(f"{len(res.ids)} days were the coldest of the preceding 20 years")
print("the most recent few:")
for t in res.ids[-5:]:
    rec = station.record(t)
    duration_days = res.durations[t]
    span = "entire record" if duration_days >= n else f"{duration_days / 365:.0f} years"
    print(f"  {rec.timestamp}: {rec.values[0]:6.1f} C  (coldest of the prior {span})")

# ---------------------------------------------------------------------------
# Climate trend: with warming, long-durability cold records should thin
# out over time. Count durable cold days per decade.
# ---------------------------------------------------------------------------
print("\nDurable cold records per decade (k=1, 10-year lookback):")
res10 = engine.query(DurableTopKQuery(k=1, tau=10 * 365), coldness, algorithm="t-hop")
per_decade: dict[int, int] = {}
for t in res10.ids:
    decade = 1965 + (t // 365) // 10 * 10
    per_decade[decade] = per_decade.get(decade, 0) + 1
for decade in sorted(per_decade):
    label = f"{decade}s"
    print(f"  {label}: {'#' * per_decade[decade]} ({per_decade[decade]})")
print("\n(the first decade is inflated by short lookback windows; the"
      "\n tail thins as warming makes new all-time cold records rarer)")
