"""Cybersecurity scenario from the paper's introduction.

"With an appropriately defined scoring function that combines multiple
features of a session — duration, volume of data transfer, number of
login attempts, number of servers accessed — a durable top-k query can
quickly help identify unusual traffic (relative to others around the same
time) for further investigation."

Run:  python examples/network_anomaly.py
"""

import numpy as np

from repro import DurableTopKEngine, DurableTopKQuery, LinearPreference
from repro.data import generate_network

net = generate_network(30_000, seed=11, anomaly_rate=0.01)

# The analyst's scoring function: weigh the features they care about.
weights = np.zeros(net.d)
for feature, weight in (
    ("duration", 0.30),
    ("src_bytes", 0.25),
    ("dst_bytes", 0.15),
    ("num_logins", 0.15),
    ("num_servers", 0.15),
):
    weights[net.attribute_names.index(feature)] = weight
scorer = LinearPreference(weights)

engine = DurableTopKEngine(net)

# Sessions that were among the 3 most suspicious of the preceding ~6%
# of traffic — standout anomalies relative to their own time. The query
# interval skips the first tau sessions so every alert is judged against
# a full window of history.
tau = net.n * 6 // 100
result = engine.query(
    DurableTopKQuery(k=3, tau=tau, interval=(tau, net.n - 1)),
    scorer,
    algorithm="s-hop",
    with_durations=True,
)

scores = scorer.scores(net.values)
print(f"{len(result.ids)} durable suspicious sessions (k=3, tau={tau})")
print(f"found with {result.stats.topk_queries} top-k queries in "
      f"{result.elapsed_seconds * 1e3:.1f} ms\n")

print("Most durable alerts (how long each stayed in the top 3):")
ranked = sorted(result.durations.items(), key=lambda kv: -kv[1])[:8]
for t, duration in ranked:
    dur_label = "all history" if duration >= net.n else f"{duration} sessions"
    print(f"  session {t:6d}  score={scores[t]:.3f}  durable for {dur_label}")

# Interactive tuning: a stricter analyst raises tau — fewer, stronger
# alerts, *and* a faster query (complexity tracks the answer size).
print("\nAlert volume vs durability threshold:")
for frac in (2, 6, 12, 25):
    tau = net.n * frac // 100
    res = engine.query(DurableTopKQuery(k=3, tau=tau), scorer, algorithm="s-hop")
    print(f"  tau = {frac:2d}% of history -> {len(res.ids):4d} alerts "
          f"({res.stats.topk_queries} top-k queries, {res.elapsed_seconds * 1e3:6.1f} ms)")
