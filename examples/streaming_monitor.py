"""Online monitoring: durable top-k decisions as records arrive.

The offline engine answers historical queries; the streaming monitor
answers the same question live, record by record:

* look-back durability ("is today's reading the coldest of the past
  decade?") is decided the instant a record arrives;
* look-ahead durability ("did that 2006 record stand for 10 years?")
  resolves the moment its window completes or it takes its k-th defeat.

Run:  python examples/streaming_monitor.py
"""

import numpy as np

from repro import StreamingDurableMonitor
from repro.core.reference import brute_force_durable_topk

rng = np.random.default_rng(99)

# A live feed of sensor readings: drifting level + spikes.
n, k, tau = 5_000, 3, 400
level = np.cumsum(rng.normal(0, 0.05, n))
spikes = (rng.random(n) < 0.01) * rng.exponential(3.0, n)
feed = level + rng.normal(0, 0.5, n) + spikes

monitor = StreamingDurableMonitor(k=k, tau=tau, track_lookahead=True)

alerts = 0
stood_the_test = []
for reading in feed:
    is_durable_now, resolutions = monitor.append(reading)
    t = monitor.n - 1
    if is_durable_now:
        alerts += 1
        if alerts <= 5 or alerts % 25 == 0:
            print(f"t={t:5d}  reading={reading:7.2f}  -> top-{k} of the last {tau} readings")
    for resolution in resolutions:
        if resolution.durable:
            stood_the_test.append(resolution.t)

stood_the_test.extend(r.t for r in monitor.finish() if r.durable)

print(f"\n{alerts} look-back durable readings (alerts fired on arrival)")
print(f"{len(stood_the_test)} readings stayed top-{k} for the *next* {tau} arrivals")

# Cross-check against the offline oracles — the monitor is exact.
offline = brute_force_durable_topk(feed, k, 0, n - 1, tau)
assert monitor.durable_ids == offline
rev = brute_force_durable_topk(feed[::-1], k, 0, n - 1, tau)
assert sorted(stood_the_test) == sorted(n - 1 - t for t in rev)
print("verified: streaming decisions identical to offline query answers")
