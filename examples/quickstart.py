"""Quickstart: durable top-k queries in five minutes.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Dataset,
    Direction,
    DurableTopKEngine,
    DurableTopKQuery,
    LinearPreference,
    durable_topk,
)

# ---------------------------------------------------------------------------
# 1. A dataset is an (n, d) matrix of ranking attributes in arrival order.
# ---------------------------------------------------------------------------
rng = np.random.default_rng(0)
data = Dataset(rng.random((50_000, 2)), name="demo")

# ---------------------------------------------------------------------------
# 2. A scoring function turns a record into one number. Preference
#    functions are parameterised by a user vector u at query time.
# ---------------------------------------------------------------------------
scorer = LinearPreference([0.7, 0.3])

# ---------------------------------------------------------------------------
# 3. One-shot query: records that were top-5 over the 5000 slots leading
#    up to their own arrival ("durable for tau = 5000").
# ---------------------------------------------------------------------------
result = durable_topk(data, scorer, k=5, tau=5_000)
print(f"{len(result.ids)} durable records out of {data.n}")
print(f"answered with {result.stats.topk_queries} top-k queries "
      f"in {result.elapsed_seconds * 1e3:.1f} ms using {result.algorithm}")

# ---------------------------------------------------------------------------
# 4. For repeated queries build an engine once; every parameter — k, tau,
#    the interval, the preference vector, even the window direction — is
#    per-query.
# ---------------------------------------------------------------------------
engine = DurableTopKEngine(data, skyband_k_max=16)
engine.prepare(["s-band"])  # offline index for the S-Band algorithm

for algorithm in ("t-base", "t-hop", "s-base", "s-band", "s-hop"):
    res = engine.query(
        DurableTopKQuery(k=5, tau=5_000, interval=(25_000, 49_999)),
        scorer,
        algorithm=algorithm,
    )
    print(f"{algorithm:7s} -> {len(res.ids):3d} records, "
          f"{res.stats.topk_queries:4d} top-k queries, "
          f"{res.elapsed_seconds * 1e3:7.2f} ms")

# ---------------------------------------------------------------------------
# 5. Look-ahead durability: records that stayed top-5 for the *next* 5000
#    slots ("stood the test of time before being beaten").
# ---------------------------------------------------------------------------
ahead = engine.query(
    DurableTopKQuery(k=5, tau=5_000, direction=Direction.FUTURE), scorer, algorithm="t-hop"
)
print(f"look-ahead durable records: {len(ahead.ids)}")

# ---------------------------------------------------------------------------
# 6. Maximum durability: for each answer, how long did it actually last?
# ---------------------------------------------------------------------------
detailed = engine.query(
    DurableTopKQuery(k=1, tau=10_000), scorer, algorithm="s-hop", with_durations=True
)
longest = sorted(detailed.durations.items(), key=lambda kv: -kv[1])[:3]
for t, duration in longest:
    note = "entire history" if duration >= data.n else f"{duration} slots"
    print(f"record t={t} stayed top-1 for {note}")
