"""Financial scenario from the paper's introduction.

"The price-to-earnings ratio (P/E) of this stock last Friday was among
the top 5 P/E's within its section for more than 30 days" — a durable
top-k query over daily P/E observations.

This example also demonstrates the look-ahead direction: a claim like
"this record stood for 30 days before being beaten" anchors the window
*after* the record.

Run:  python examples/stock_screener.py
"""

import numpy as np

from repro import (
    Dataset,
    Direction,
    DurableTopKEngine,
    DurableTopKQuery,
    LinearPreference,
    MonotonePreference,
)

# ---------------------------------------------------------------------------
# Synthesise daily observations for a sector: each record is one stock's
# daily snapshot with (P/E ratio, dividend yield, momentum). Observations
# arrive in day order; ~40 stocks per day over ~3 years.
# ---------------------------------------------------------------------------
rng = np.random.default_rng(42)
n_days, stocks_per_day = 750, 40
n = n_days * stocks_per_day

base_pe = rng.lognormal(3.0, 0.4, stocks_per_day)           # per-stock level
drift = np.cumsum(rng.normal(0, 0.02, (n_days, stocks_per_day)), axis=0)
pe = (base_pe[None, :] * np.exp(drift)).reshape(-1)
dividend = np.clip(rng.normal(2.5, 1.0, n), 0, None)
momentum = np.clip(rng.normal(0.5, 0.2, n), 0, 1)

day_labels = [f"day{d:04d}" for d in range(n_days) for _ in range(stocks_per_day)]
tickers = [f"STK{s:02d}" for _ in range(n_days) for s in range(stocks_per_day)]
market = Dataset(
    np.column_stack([pe, dividend, momentum]),
    timestamps=day_labels,
    labels=tickers,
    attribute_names=["pe_ratio", "dividend_yield", "momentum"],
    name="sector",
)

engine = DurableTopKEngine(market)
DAYS_30 = 30 * stocks_per_day  # tau in record slots

# ---------------------------------------------------------------------------
# The broker's claim: top-5 P/E within the sector for more than 30 days.
# ---------------------------------------------------------------------------
pe_only = LinearPreference([1.0, 0.0, 0.0])
res = engine.query(DurableTopKQuery(k=5, tau=DAYS_30), pe_only, algorithm="t-hop")
print(f"{len(res.ids)} daily P/E observations were top-5 over the trailing 30 days")
latest = res.ids[-5:]
for t in latest:
    rec = market.record(t)
    print(f"  {rec.timestamp} {rec.label}: P/E {rec.values[0]:.1f}")

# ---------------------------------------------------------------------------
# Look-ahead version: observations that *stayed* top-5 for the next 30
# days — "stood until beaten".
# ---------------------------------------------------------------------------
ahead = engine.query(
    DurableTopKQuery(k=5, tau=DAYS_30, direction=Direction.FUTURE), pe_only, algorithm="t-hop"
)
print(f"\n{len(ahead.ids)} observations stayed top-5 for the following 30 days")

# ---------------------------------------------------------------------------
# Interactive preference tuning: a composite score over log-P/E, yield
# and momentum — the "user-specified scoring function" in action.
# ---------------------------------------------------------------------------
print("\nComposite screens (k=5, 30-day durability):")
for name, u in (
    ("value-tilted ", [0.2, 0.6, 0.2]),
    ("balanced     ", [0.34, 0.33, 0.33]),
    ("momentum-tilt", [0.2, 0.2, 0.6]),
):
    composite = MonotonePreference(u, transform=np.log1p)
    r = engine.query(DurableTopKQuery(k=5, tau=DAYS_30), composite, algorithm="s-hop")
    picks = {market.record(t).label for t in r.ids[-40:]}
    print(f"  {name} -> {len(r.ids):4d} durable observations; "
          f"recent tickers: {', '.join(sorted(picks)[:6])}")
