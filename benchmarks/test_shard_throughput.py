"""Scaling benchmark: multi-process sharded serving vs a 1-shard baseline.

Asserts the tentpole claim of the shard tier: closed-loop throughput
scales with shard processes because durable top-k execution escapes the
GIL. The full throughput-vs-shards curve (with per-shard fanout and
latency percentiles) goes to ``results/shard_throughput.txt``.

The >= 2x-at-4-shards assertion only means something when the machine
actually has 4 cores to scale onto, so it is gated on ``os.cpu_count()``
— on smaller boxes the benchmark still runs, records the curve (the
report stamps the core count), and pins the correctness half of the
contract (zero rejected, zero incorrect, zero unexpected worker
restarts) before the test reports an explicit skip rather than a silent
pass.
"""

import os

import pytest

from repro.experiments.shard_bench import shard_throughput_bench


def test_shard_throughput(save_report):
    cores = os.cpu_count() or 1
    result = shard_throughput_bench(shard_counts=(1, 2, 4), verify=True)
    save_report(result.name, result.report, result.metrics)

    assert result.data["incorrect"] == 0
    assert result.data["rejected"] == 0
    assert not any(result.data["restarts"].values()), result.report
    requests = result.data["requests"]
    assert result.data["verified"] == 3 * requests
    curve = result.data["curve"]
    for shards in (1, 2, 4):
        assert curve[shards] > 0.0
        latency = result.data["per_shard"][shards]["latency_ms"]
        for q in ("p50", "p95", "p99"):
            assert latency[q] > 0.0
    # Fanout must be measured: with 4 spans and Table-III-style interval
    # draws, a visible share of requests straddles at least two spans
    # (mean fanout collapses to exactly 1.0 if straddling ever breaks).
    assert result.data["per_shard"][4]["mean_fanout"] > 1.0
    if cores < 4:
        # Everything above (correctness, curve, fanout) has been pinned;
        # only the scaling headline is meaningless without 4 cores. Skip
        # loudly so CI shows the assertion was *not* exercised, instead
        # of a pass that silently proved nothing.
        pytest.skip(
            f"shard scaling assertion needs >= 4 cores, machine has {cores}; "
            "correctness half of the contract verified"
        )
    # The headline: 4 worker processes at least double the 1-shard
    # baseline's completed requests/second.
    assert result.data["speedup"][4] >= 2.0, result.report
