"""Ablation: the three top-k building blocks under the same algorithm.

Section II treats the top-k block as pluggable; this ablation runs T-Hop
over (a) the score-array segment tree, (b) the paper's Appendix-A skyline
tree, and (c) the appendable block-decomposition index, confirming
identical answers and comparing costs. It also sweeps the skyline tree's
LENGTH_THRESHOLD (Appendix A's granularity knob).
"""

import time


from repro.core.algorithms.base import AlgorithmContext, get_algorithm
from repro.core.query import QueryStats
from repro.core.reference import brute_force_durable_topk
from repro.experiments.figures import nba2_dataset
from repro.experiments.report import format_table
from repro.index.block_topk import BlockTopKIndex
from repro.index.range_topk import ScoreArrayTopKIndex
from repro.index.skyline_tree import SkylineTree
from repro.index.topk import CountingTopKIndex
from repro.scoring import LinearPreference

K, TAU_FRac = 10, 0.10


def _run_thop(dataset, scorer, inner_index):
    stats = QueryStats()
    index = CountingTopKIndex(inner_index, stats)
    n = dataset.n
    ctx = AlgorithmContext(
        dataset=dataset,
        index=index,
        scorer=scorer,
        k=K,
        tau=int(n * TAU_FRac),
        lo=n // 2,
        hi=n - 1,
        stats=stats,
    )
    start = time.perf_counter()
    ids = get_algorithm("t-hop").run(ctx)
    elapsed = (time.perf_counter() - start) * 1e3
    return ids, stats, elapsed


def _measure():
    dataset = nba2_dataset(16_000)
    scorer = LinearPreference([0.6, 0.4])
    scores = scorer.scores(dataset.values)
    n = dataset.n
    expected = brute_force_durable_topk(scores, K, n // 2, n - 1, int(n * TAU_FRac))

    rows = []
    blocks = {
        "score-array segment tree": lambda: ScoreArrayTopKIndex(scores),
        "block decomposition (B=64)": lambda: BlockTopKIndex(scores, block_size=64),
    }
    for label, factory in blocks.items():
        build_start = time.perf_counter()
        inner = factory()
        build_ms = (time.perf_counter() - build_start) * 1e3
        ids, stats, query_ms = _run_thop(dataset, scorer, inner)
        assert ids == expected, label
        rows.append(
            {
                "building block": label,
                "build_ms": round(build_ms, 2),
                "query_ms": round(query_ms, 2),
                "topk_queries": stats.topk_queries,
            }
        )
    for threshold in (32, 128, 512):
        build_start = time.perf_counter()
        tree = SkylineTree(dataset, length_threshold=threshold)
        build_ms = (time.perf_counter() - build_start) * 1e3
        ids, stats, query_ms = _run_thop(dataset, scorer, tree.bind(scorer))
        assert ids == expected, threshold
        rows.append(
            {
                "building block": f"skyline tree (threshold={threshold})",
                "build_ms": round(build_ms, 2),
                "query_ms": round(query_ms, 2),
                "topk_queries": stats.topk_queries,
            }
        )
    return rows


def test_ablation_index_blocks(benchmark, save_report):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    save_report(
        "ablation_index_blocks",
        format_table(rows, title="Ablation — top-k building blocks under T-Hop (NBA-2, 16k)"),
    )
    # The invocation count is a property of the algorithm, not the block.
    counts = {r["topk_queries"] for r in rows}
    assert len(counts) == 1, counts
