"""Microbenchmarks pinning the vectorized MiniDB top-k hot path.

Three properties keep the Table IV–VI wall-time story honest:

* the ``topk`` finalization is near-linear in the candidate count — a
  large ``k`` must not cost quadratically more than a small one (the seed
  implementation re-ran ``np.asarray(ids)`` per output element);
* a query session makes consecutive top-k calls cheaper than fresh calls
  (block upper bounds are reused, so index pages are not re-read);
* T-Hop beats T-Base on wall time at a selective ``tau`` — the paper's
  Section VI-C ordering, which per-call Python overhead used to invert.

Wall-time assertions use best-of-rounds and generous margins; the page
and logical-read assertions are exact.
"""

import time

import numpy as np

from repro.core.record import Dataset
from repro.minidb import MiniDB, t_base_procedure, t_hop_procedure
from repro.scoring import random_preference


def _best_of(fn, rounds=3):
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return min(times), result


def test_minidb_hotpath(benchmark, save_report):
    rng = np.random.default_rng(5)
    n = 20_000
    dataset = Dataset(rng.random((n, 2)), name="hotpath")
    u = random_preference(rng, 2)
    lines = []
    with MiniDB(dataset) as db:
        session = db.session(u)
        db.topk(u, 10, 0, n - 1, session=session)  # warm buffer + caches

        # 1. Near-linear finalization: k=2000 collects the same candidate
        # blocks as k=10 over a fixed window; the extra cost is one larger
        # sort, not an O(n^2) conversion loop.
        small_t, small_ids = _best_of(lambda: db.topk(u, 10, 0, n - 1, session=session))
        large_t, large_ids = _best_of(lambda: db.topk(u, 2000, 0, n - 1, session=session))
        assert len(small_ids) == 10 and len(large_ids) == 2000
        assert large_ids[:10] == small_ids
        lines.append(f"topk k=10: {small_t * 1e3:.2f} ms  k=2000: {large_t * 1e3:.2f} ms")
        assert large_t < 50 * small_t, (small_t, large_t)

        # 2. Session reuse: with cached upper bounds, a repeated call does
        # not re-read index pages — strictly fewer logical reads.
        fresh = db.session(u)
        db.reset_io()
        db.topk(u, 10, n // 4, 3 * n // 4, session=fresh)
        first_reads = db.io_stats()["logical_reads"]
        db.reset_io()
        db.topk(u, 10, n // 4, 3 * n // 4, session=fresh)
        repeat_reads = db.io_stats()["logical_reads"]
        lines.append(f"logical reads first call: {first_reads}  repeat: {repeat_reads}")
        assert 0 < repeat_reads < first_reads

        # 3. The headline: T-Hop wins on seconds (not only pages) at a
        # selective tau.
        tau = n // 2

        def pair():
            hop = t_hop_procedure(db, u, 10, tau, n // 2, n - 1, cold=False)
            base = t_base_procedure(db, u, 10, tau, n // 2, n - 1, cold=False)
            return hop, base

        benchmark.pedantic(pair, rounds=1, iterations=1)
        runs = [pair() for _ in range(3)]
        hop_t = min(hop.elapsed_seconds for hop, _ in runs)
        base_t = min(base.elapsed_seconds for _, base in runs)
        lines.append(f"tau=50%: t-hop {hop_t * 1e3:.2f} ms  t-base {base_t * 1e3:.2f} ms")
        assert hop_t < base_t, (hop_t, base_t)

    save_report("minidb_hotpath", "MiniDB hot path microbenchmark\n" + "\n".join(lines))
