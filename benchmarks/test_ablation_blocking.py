"""Ablation: how much work does the blocking mechanism save S-Hop?

DESIGN.md calls out blocking intervals (Section IV, Figure 3) as the
design choice distinguishing the score-prioritized algorithms. Disabling
it (`s-hop-noblock`) keeps answers identical but forces a durability
check on every heap pop; the gap isolates the mechanism's pruning power.
"""

from repro.experiments.figures import nba2_dataset
from repro.experiments.harness import run_algorithm_suite
from repro.experiments.report import format_table


def _run():
    dataset = nba2_dataset(16_000)
    out = {}
    for tau_frac in (0.05, 0.20):
        tau = int(dataset.n * tau_frac)
        rows = run_algorithm_suite(
            dataset,
            algorithms=["s-hop", "s-hop-noblock"],
            tau=tau,
            n_preferences=3,
        )
        out[tau_frac] = rows
    return out


def test_ablation_blocking(benchmark, save_report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for tau_frac, algos in results.items():
        for name, row in algos.items():
            rows.append(
                {
                    "tau": f"{int(tau_frac * 100)}%",
                    "variant": name,
                    "durability checks": round(row.mean_durability_queries, 1),
                    "total topk": round(row.mean_topk_queries, 1),
                    "mean_ms": round(row.mean_ms, 2),
                }
            )
    save_report(
        "ablation_blocking",
        format_table(rows, title="Ablation — S-Hop blocking mechanism on/off (NBA-2)"),
    )
    for tau_frac, algos in results.items():
        with_blocking = algos["s-hop"]
        without = algos["s-hop-noblock"]
        # Identical answers are enforced by the harness; blocking must cut
        # durability checks by a large factor.
        assert with_blocking.mean_durability_queries * 3 < without.mean_durability_queries, tau_frac
        assert with_blocking.mean_ms < without.mean_ms
