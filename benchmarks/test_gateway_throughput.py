"""Gateway throughput benchmark: the wire must be cheap and honest.

Asserts the network front door's tentpole claim: serving the PR 8
workload over localhost TCP — length-prefixed JSON frames, per-request
hashed-key auth, per-tenant admission — costs at most 1.5x the
in-process p95 at the same offered load, with nothing rejected.

Byte-identity is asserted unconditionally: every socket-served answer
(ids, durations *and* per-query stats) is re-derived on a fresh
in-process engine. A gateway that returns fast wrong answers is not a
gateway.
"""

from repro.experiments.gateway_bench import SLO_P95_RATIO, gateway_throughput_bench


def test_gateway_throughput(save_report):
    result = gateway_throughput_bench(
        n=24_000,
        requests=400,
        rate=150.0,
        clients=4,
        workers=4,
        n_preferences=16,
        rounds=2,
        verify=True,
    )
    save_report(result.name, result.report, result.metrics)

    # Correctness half: every socket answer re-derives byte-identically.
    assert result.data["incorrect"] == 0, result.report
    assert result.data["rejected"] == 0, result.report
    assert result.data["verified"] == result.data["requests"], result.report

    # Performance half: the wire p95 price stays within the SLO.
    assert result.data["p95_ratio"] <= SLO_P95_RATIO, result.report
