"""Table IV: DBMS-backed (MiniDB) T-Hop vs T-Base, varying tau.

Paper's claims reproduced here (with page I/O as the scale-free cost and
best-of-warm-rounds seconds as the CPU metric, see EXPERIMENTS.md):
* T-Hop's cost falls as tau grows (more selective query);
* T-Base's cost is essentially independent of tau;
* T-Hop reads fewer pages than T-Base at every setting;
* at high tau T-Hop wins on wall time too, as in Section VI-C.
"""

from repro.experiments.tables import table4_dbms_vary_tau


def test_table4_dbms_vary_tau(benchmark, save_report):
    fig = benchmark.pedantic(
        table4_dbms_vary_tau, kwargs={"n": 40_000}, rounds=1, iterations=1
    )
    save_report("table4_dbms_tau", fig.report, fig.metrics)
    rows = fig.data["rows"]

    hop_pages = [r["t-hop pages"] for r in rows]
    base_pages = [r["t-base pages"] for r in rows]
    # T-Hop touches fewer pages everywhere; the gap widens with tau.
    for h, b in zip(hop_pages, base_pages):
        assert h < b
    assert rows[-1]["page ratio"] > rows[0]["page ratio"]
    # T-Hop gets cheaper as tau grows; T-Base stays roughly flat.
    assert hop_pages[-1] < hop_pages[0]
    assert base_pages[-1] > 0.5 * base_pages[0]
    # At the most selective setting T-Hop beats T-Base outright on wall
    # time — the paper's Section VI-C ordering. Seconds are best-of-3 warm
    # rounds, so this measures the algorithms, not scheduler noise.
    assert rows[-1]["t-hop s"] < rows[-1]["t-base s"]
