"""Table VI: DBMS-backed comparison across datasets (NBA-2, Syn-IND/ANTI).

Paper's claims reproduced here:
* on the larger synthetic tables, T-Base pays a full-interval scan while
  T-Hop's page footprint stays near-constant — the gap (the paper's
  100x at 30 GB) widens with data size;
* results are identical between the two procedures on every dataset.
"""

from repro.experiments.tables import table6_dbms_datasets


def test_table6_dbms_datasets(benchmark, save_report):
    fig = benchmark.pedantic(
        table6_dbms_datasets,
        kwargs={"nba_n": 20_000, "syn_n": 120_000},
        rounds=1,
        iterations=1,
    )
    save_report("table6_dbms_size", fig.report, fig.metrics)
    rows = {r["dataset"].split(" ")[0]: r for r in fig.data["rows"]}

    # The big synthetic tables show a clear page-I/O gap...
    assert rows["Syn-IND"]["page ratio"] >= 3
    assert rows["Syn-ANTI"]["page ratio"] >= 3
    # ...wider than on the small NBA table (gap grows with data size).
    assert rows["Syn-IND"]["page ratio"] > rows["NBA-2"]["page ratio"] * 0.9
    # T-Hop stays wall-time competitive on the large tables (CPU-bound at
    # laptop scale; the page columns carry the paper's 100x disk story).
    assert rows["Syn-IND"]["t-hop s"] < 1.2 * rows["Syn-IND"]["t-base s"]
    assert rows["Syn-ANTI"]["t-hop s"] < 1.2 * rows["Syn-ANTI"]["t-base s"]
