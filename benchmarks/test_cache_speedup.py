"""Semantic answer cache benchmark: structural reuse of served answers.

Asserts the tentpole claim of the exact tier: on the Zipfian
shape-catalogue workload (hot preferences repeating hot query shapes
verbatim), fronting the PR 8 serving configuration with the semantic
answer cache drops p95 latency by at least 3x at a hit rate of at
least 50%. The uncached-vs-cached comparison goes to
``results/cache_speedup.txt``.

Byte-identity is asserted unconditionally, twice: every cached-side
answer is re-derived (ids, durations *and* per-query stats) on a fresh
uncached engine, and a live-ingest phase re-derives every response from
the frozen prefix its snapshot version pins — a speedup over stale or
wrong answers is no speedup.
"""

from repro.experiments.cache_bench import cache_speedup_bench


def test_cache_speedup(save_report):
    result = cache_speedup_bench(verify=True)
    save_report(result.name, result.report, result.metrics)

    # Correctness half: nothing wrong, nothing stale, nothing refused.
    assert result.data["incorrect"] == 0, result.report
    assert result.data["rejected"] == 0, result.report
    assert result.data["verified"] == result.data["requests"], result.report
    ingest = result.data["ingest"]
    assert ingest["incorrect"] == 0, result.report
    assert ingest["verified"] + ingest["rejected"] == ingest["requests"]

    # Performance half: the headline — >= 3x p95 drop at >= 50% hits.
    assert result.data["hit_rate"] >= 0.50, result.report
    assert result.data["p95_speedup"] >= 3.0, result.report
