"""Figure 8: performance of all five algorithms as tau varies.

Paper's claims reproduced here:
* T-Hop / S-Hop / S-Band get faster as tau grows (query more selective);
* S-Base pays the full sort regardless of tau and ends up slowest at
  large tau; T-Base is mostly tau-independent;
* panel (b): the hop/band algorithms' top-k query counts shrink with tau
  and S-Band/S-Hop durability checks <= T-Hop's (blocking mechanism);
* the S-Band candidate set |C| shrinks with tau and stays a superset of
  the answer.
"""

import pytest

from repro.experiments.figures import TAU_FRACTIONS, figure8_vary_tau


def _check_shape(fig):
    sweep = fig.data["sweep"]
    taus = sweep.parameter_values()
    topk = sweep.series("mean_topk_queries")
    ms = sweep.series("mean_ms")
    cset = sweep.series("mean_candidate_set")["s-band"]
    answer = sweep.series("mean_answer_size")["t-hop"]

    # Hop-based query counts shrink as tau grows.
    assert topk["t-hop"][0] > topk["t-hop"][-1]
    assert topk["s-hop"][0] > topk["s-hop"][-1]
    # At the most selective setting the hop algorithms beat both baselines.
    assert ms["t-hop"][-1] < ms["s-base"][-1]
    assert ms["s-hop"][-1] < ms["s-base"][-1]
    assert ms["t-hop"][-1] < ms["t-base"][-1]
    # Blocking prunes: S-Band/S-Hop durability checks <= T-Hop's.
    dur = sweep.series("mean_durability_queries")
    for i in range(len(taus)):
        assert dur["s-hop"][i] <= dur["t-hop"][i] + 1
        assert dur["s-band"][i] <= dur["t-hop"][i] + 1
    # Candidate sets: superset of answers, shrinking with tau.
    for c, s in zip(cset, answer):
        assert c >= s
    assert cset[0] > cset[-1]


@pytest.mark.parametrize("workload", ["nba2", "network2"])
def test_fig8_vary_tau(benchmark, workload, request, save_report):
    dataset = request.getfixturevalue(workload)
    fig = benchmark.pedantic(
        figure8_vary_tau, args=(dataset,), kwargs={"n_preferences": 3}, rounds=1, iterations=1
    )
    save_report(f"fig8_{workload}", fig.report, fig.metrics)
    _check_shape(fig)
    assert len(fig.data["sweep"].parameter_values()) == len(TAU_FRACTIONS)
