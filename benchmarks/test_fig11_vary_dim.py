"""Figure 11: effect of dimensionality d on Network-X.

Paper's claims reproduced here:
* the number of top-k queries is essentially independent of d for every
  algorithm (it depends only on k|I|/tau);
* S-Band's candidate set |C| explodes with d (orders of magnitude above
  the answer size), and S-Band's runtime degrades accordingly;
* T-Hop/S-Hop runtimes grow only mildly with d (costlier top-k queries,
  same number of them).
"""

from repro.experiments.figures import figure11_vary_dimension


def test_fig11_vary_dimension(benchmark, save_report):
    fig = benchmark.pedantic(
        figure11_vary_dimension,
        kwargs={"n": 8_000, "dimensions": [2, 3, 5, 10, 20, 37], "n_preferences": 2},
        rounds=1,
        iterations=1,
    )
    save_report("fig11_network", fig.report, fig.metrics)

    rows = fig.data["rows"]
    dims = sorted(rows)
    lo_d, hi_d = dims[0], dims[-1]

    # #top-k queries ~ independent of d for the hop algorithms.
    for algo in ("t-hop", "s-hop"):
        counts = [rows[d][algo].mean_topk_queries for d in dims]
        assert max(counts) <= 3 * max(min(counts), 1), (algo, counts)

    # |C| explodes with dimensionality.
    c_lo = rows[lo_d]["s-band"].mean_candidate_set
    c_hi = rows[hi_d]["s-band"].mean_candidate_set
    assert c_hi > 5 * max(c_lo, 1)
    # ... and towers above the actual answer size at high d.
    assert c_hi > 10 * rows[hi_d]["s-band"].mean_answer_size

    # S-Band pays for it: slower than S-Hop at the highest dimensionality.
    assert rows[hi_d]["s-band"].mean_ms > rows[hi_d]["s-hop"].mean_ms
