"""Figure 9: performance as k varies.

Paper's claims reproduced here:
* all algorithms except S-Base slow down as k grows (more and costlier
  top-k queries);
* panel (b): top-k query counts grow with k;
* at large k the score-prioritized algorithms stay at or below T-Hop's
  durability-check count (blocking is most valuable when checks are
  expensive).
"""

import pytest

from repro.experiments.figures import K_VALUES, figure9_vary_k


def _check_shape(fig):
    sweep = fig.data["sweep"]
    topk = sweep.series("mean_topk_queries")
    dur = sweep.series("mean_durability_queries")
    answer = sweep.series("mean_answer_size")["t-hop"]

    # Query counts rise with k for the hop algorithms.
    assert topk["t-hop"][-1] > topk["t-hop"][0]
    assert topk["s-hop"][-1] > topk["s-hop"][0]
    # Answer size grows with k (E|S| = k|I|/(tau+1)).
    assert answer[-1] > answer[0]
    # Blocking keeps S-Hop/S-Band durability checks at or below T-Hop's.
    assert dur["s-hop"][-1] <= dur["t-hop"][-1] + 1
    assert dur["s-band"][-1] <= dur["t-hop"][-1] + 1


@pytest.mark.parametrize("workload", ["nba2", "network2"])
def test_fig9_vary_k(benchmark, workload, request, save_report):
    dataset = request.getfixturevalue(workload)
    fig = benchmark.pedantic(
        figure9_vary_k, args=(dataset,), kwargs={"n_preferences": 3}, rounds=1, iterations=1
    )
    save_report(f"fig9_{workload}", fig.report, fig.metrics)
    _check_shape(fig)
    assert len(fig.data["sweep"].parameter_values()) == len(K_VALUES)
