"""Throughput benchmark: session-pooled service vs naive global lock.

Asserts the tentpole claim of the serving layer: at 8 workers on the
synthetic Zipfian workload, the session-pooled batched
:class:`~repro.service.service.DurableTopKService` beats the
lock-around-the-engine baseline by >= 3x completed-requests-per-second,
with zero rejected and zero incorrect responses. The measured
p50/p95/p99 latencies of both sides go to
``results/service_throughput.txt``.

Rounds are interleaved naive/pooled and compared best-vs-best after an
untimed warmup (see :mod:`repro.experiments.service_bench`), which is
what makes the wall-clock assertion stable enough to gate on: the gap is
structural (the pool builds each preference-bound index once; the naive
baseline's 8-entry LRU rebuilds evicted preferences all run long), not a
scheduling accident.
"""

from repro.experiments.service_bench import service_throughput_bench


def test_service_throughput(save_report):
    result = service_throughput_bench()
    save_report(result.name, result.report, result.metrics)

    assert result.data["incorrect"] == 0
    assert result.data["rejected"] == 0
    naive = result.data["naive"]
    pooled = result.data["pooled"]
    # Latency percentiles must be recorded for both sides.
    for side in (naive, pooled):
        for q in ("p50", "p95", "p99"):
            assert side["latency_ms"][q] > 0.0
    # The pool's contract: cold work is bounded by the preference
    # catalogue, never by the request count — each preference's session
    # is built at most once (the naive LRU rebuilds evicted preferences
    # hundreds of times on this stream). Batching soaks up the rest.
    assert result.data["pool"]["misses"] <= 128
    assert result.data["pooled"]["mean_batch_size"] > 1.0
    # The headline: >= 3x throughput at 8 workers.
    assert result.data["workers"] == 8
    assert result.data["speedup"] >= 3.0, result.report
