"""Ablation: MiniDB index-table granularity (block_rows) and buffer size.

The paper's index table granularity is an implementation knob
(LENGTH_THRESHOLD=128 in Appendix A; block size in the DBMS index
tables). This ablation sweeps MiniDB's ``block_rows`` and buffer-pool
capacity under T-Hop to show the cost tradeoff: finer blocks mean
tighter bounds but more index pages; bigger buffers absorb physical
reads.
"""

import numpy as np

from repro.data import synthetic_dataset
from repro.experiments.report import format_table
from repro.minidb import MiniDB, t_hop_procedure


def _measure():
    dataset = synthetic_dataset("ind", 60_000, 2, seed=1)
    u = np.array([0.5, 0.5])
    n = dataset.n
    rows = []
    for block_rows in (64, 256, 1024):
        with MiniDB(dataset, block_rows=block_rows) as db:
            rep = t_hop_procedure(db, u, 10, n // 10, n // 2, n - 1)
            rows.append(
                {
                    "block_rows": block_rows,
                    "buffer": 64,
                    "seconds": round(rep.elapsed_seconds, 3),
                    "logical": rep.logical_reads,
                    "physical": rep.physical_reads,
                    "storage_pages": db.storage_pages(),
                }
            )
    for buffer_pages in (16, 256):
        with MiniDB(dataset, buffer_pages=buffer_pages) as db:
            rep = t_hop_procedure(db, u, 10, n // 10, n // 2, n - 1)
            rows.append(
                {
                    "block_rows": 256,
                    "buffer": buffer_pages,
                    "seconds": round(rep.elapsed_seconds, 3),
                    "logical": rep.logical_reads,
                    "physical": rep.physical_reads,
                    "storage_pages": db.storage_pages(),
                }
            )
    return rows


def test_ablation_minidb(benchmark, save_report):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    save_report(
        "ablation_minidb",
        format_table(rows, title="Ablation — MiniDB block_rows / buffer pool under T-Hop"),
    )
    by_block = {r["block_rows"]: r for r in rows if r["buffer"] == 64}
    # Coarser blocks -> fewer storage pages for the index.
    assert by_block[1024]["storage_pages"] <= by_block[64]["storage_pages"]
    by_buffer = {r["buffer"]: r for r in rows if r["block_rows"] == 256}
    # Bigger buffer -> fewer physical reads, same logical reads.
    assert by_buffer[256]["physical"] <= by_buffer[16]["physical"]
