"""Ingest throughput & freshness gates for the live pipeline.

Asserts the tentpole claims of the ingest subsystem under one sustained
run (writer threads appending micro-batches flat out while closed-loop
clients query the session-pooled service over the LiveBackend):

* the pipeline sustains >= 10k appends/second *while serving*;
* concurrent queries pay at most 2x the static-dataset service p95
  (the baseline round is measured in the same process, mirroring the
  static service numbers in ``results/service_throughput.txt``);
* p95 query staleness — rows landing between a query's snapshot and its
  completion — stays under one second of ingest;
* zero rejected responses, and every sampled response re-derives
  serially against the brute-force oracle over its own prefix.

The report goes to ``results/ingest_throughput.txt``.
"""

from repro.experiments.ingest_bench import ingest_throughput_bench


def test_ingest_throughput(save_report):
    result = ingest_throughput_bench(verify_sample=100)
    save_report(result.name, result.report, result.metrics)

    data = result.data
    assert data["rejected"] == 0
    assert data["incorrect"] == 0
    assert data["verified"] > 0
    # The background sealer/compactor actually ran: the ingested volume
    # ended up in sealed segments, not one ever-growing tail.
    assert data["seals"] > 0
    assert data["segments"] < data["final_n"] // 1000
    # Performance gates (see module docstring).
    assert data["appends_per_sec"] >= 10_000
    assert data["p95_ratio"] <= 2.0
    assert data["staleness_p95_ms"] <= 1_000.0
