"""Lemma 5 validation: the durable k-skyband candidate set obeys
E[|C|] = O(k * |I|/tau * log^{d-1} tau) on random data.

The sharp per-window estimate is (|I|/tau) * A(tau+1, d), where A is the
expected k-skyband size recurrence evaluated exactly by
``expected_skyband_size``; the measured |C| must stay within a constant
factor of it, and must grow with d.
"""


from repro.analysis.expected import expected_skyband_size
from repro.data.synthetic import independent_uniform
from repro.experiments.report import format_table
from repro.index.kskyband import DurableSkybandIndex


def _measure(n=6_000, k=4, tau=599):
    rows = []
    for d in (2, 3, 4):
        data = independent_uniform(n, d, seed=d)
        index = DurableSkybandIndex(data, k_max=k)
        measured = index.candidate_count(k, 0, n - 1, tau)
        predicted = (n / tau) * expected_skyband_size(tau + 1, d, k)
        rows.append(
            {
                "d": d,
                "measured |C|": measured,
                "windowed estimate": round(predicted, 1),
                "ratio": round(measured / predicted, 2),
            }
        )
    return rows


def test_lemma5_candidate_size(benchmark, save_report):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    report = format_table(
        rows, title="Lemma 5 — E[|C|] vs (|I|/tau) * A(tau+1, d) on IND data"
    )
    save_report("lemma5_candidate_size", report)
    # Measured |C| grows with d, as log^{d-1} predicts.
    measured = [r["measured |C|"] for r in rows]
    assert measured == sorted(measured)
    # And stays within a constant factor of the windowed estimate.
    for row in rows:
        assert 0.2 < row["ratio"] < 5.0, row
