"""Figure 12: scalability on synthetic IND and ANTI data.

Paper's claims reproduced here:
* T-Hop and S-Hop scale gracefully: their top-k query counts stay flat
  as n grows (the interval is a fixed fraction, tau a fixed fraction, so
  k|I|/tau is constant);
* on IND data, |C| stays within a small factor of |S|;
* on ANTI data, |C| blows up relative to |S| (most records sit in the
  k-skyband), hurting S-Band — while T-Hop/S-Hop are insensitive to the
  distribution.
"""


from repro.experiments.figures import figure12_scalability

IND_SIZES = [10_000, 20_000, 40_000]
ANTI_SIZES = [8_000, 16_000, 32_000]


def test_fig12_ind(benchmark, save_report):
    fig = benchmark.pedantic(
        figure12_scalability,
        args=("ind",),
        kwargs={"sizes": IND_SIZES, "n_preferences": 3},
        rounds=1,
        iterations=1,
    )
    save_report("fig12_ind", fig.report, fig.metrics)
    rows = fig.data["rows"]
    for algo in ("t-hop", "s-hop"):
        counts = [rows[n][algo].mean_topk_queries for n in IND_SIZES]
        assert max(counts) <= 2.5 * max(min(counts), 1), (algo, counts)
    # IND: candidate set within a small factor of the answer size.
    for n in IND_SIZES:
        ratio = rows[n]["s-band"].mean_candidate_set / max(rows[n]["s-band"].mean_answer_size, 1)
        assert ratio < 20, (n, ratio)


def test_fig12_anti(benchmark, save_report):
    fig = benchmark.pedantic(
        figure12_scalability,
        args=("anti",),
        kwargs={"sizes": ANTI_SIZES, "n_preferences": 3},
        rounds=1,
        iterations=1,
    )
    save_report("fig12_anti", fig.report, fig.metrics)
    rows = fig.data["rows"]
    # Hop algorithms stay flat in #queries on ANTI too.
    for algo in ("t-hop", "s-hop"):
        counts = [rows[n][algo].mean_topk_queries for n in ANTI_SIZES]
        assert max(counts) <= 2.5 * max(min(counts), 1), (algo, counts)
    # ANTI inflates |C| far beyond |S| (the distribution S-Band fears).
    biggest = ANTI_SIZES[-1]
    ratio = rows[biggest]["s-band"].mean_candidate_set / max(
        rows[biggest]["s-band"].mean_answer_size, 1
    )
    assert ratio > 20, ratio


def test_fig12_anti_vs_ind_candidate_blowup(benchmark, save_report):
    """Direct IND-vs-ANTI comparison at one size (the Figure 12 story)."""

    def _run():
        ind = figure12_scalability("ind", sizes=[16_000], n_preferences=2)
        anti = figure12_scalability("anti", sizes=[16_000], n_preferences=2)
        return ind, anti

    ind, anti = benchmark.pedantic(_run, rounds=1, iterations=1)
    ind_row = ind.data["rows"][16_000]["s-band"]
    anti_row = anti.data["rows"][16_000]["s-band"]
    ind_ratio = ind_row.mean_candidate_set / max(ind_row.mean_answer_size, 1)
    anti_ratio = anti_row.mean_candidate_set / max(anti_row.mean_answer_size, 1)
    report = (
        "Figure 12 cross-check — |C|/|S| at n=16k\n"
        f"IND : {ind_ratio:8.1f}\n"
        f"ANTI: {anti_ratio:8.1f}"
    )
    save_report("fig12_candidate_blowup", report)
    assert anti_ratio > 3 * ind_ratio
