"""Shared fixtures for the figure/table benchmarks.

Every benchmark writes its paper-style report to ``results/<name>.txt``
(and prints it), so EXPERIMENTS.md can reference the exact series
produced on this machine.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_report(results_dir):
    def _save(name: str, report: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(report + "\n")
        print(f"\n{report}\n[saved to {path}]")

    return _save


def bench_scale() -> float:
    """Global size multiplier (REPRO_BENCH_SCALE env var, default 1.0)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def nba2():
    from repro.experiments.figures import nba2_dataset

    return nba2_dataset(int(20_000 * bench_scale()))


@pytest.fixture(scope="session")
def network2():
    from repro.experiments.figures import network2_dataset

    return network2_dataset(int(20_000 * bench_scale()))
