"""Shared fixtures for the figure/table benchmarks.

Every benchmark writes its paper-style report to ``results/<name>.txt``
(stamped with an environment fingerprint and printed), so EXPERIMENTS.md
can reference the exact series produced on this machine. Benchmarks that
carry structured :class:`~repro.experiments.resultstore.BenchMetric`
telemetry pass it as ``save_report``'s third argument and additionally
emit ``results/BENCH_<name>.json`` — the records ``repro perf-report``
and ``repro perf-gate`` diff against ``benchmarks/baselines/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_report(results_dir):
    from repro.experiments.resultstore import (
        BenchRecord,
        environment_fingerprint,
        fingerprint_header,
        save_bench_record,
    )

    def _save(name: str, report: str, metrics=None) -> None:
        env = environment_fingerprint()
        path = results_dir / f"{name}.txt"
        path.write_text(fingerprint_header(env) + "\n" + report + "\n")
        print(f"\n{report}\n[saved to {path}]")
        if metrics:
            # Named after the artifact (fig8_nba2, table4_dbms_tau, ...)
            # so per-workload records stay distinct in the baseline dir.
            save_bench_record(
                BenchRecord(name=name, metrics=list(metrics), environment=env),
                results_dir,
            )

    return _save


def bench_scale() -> float:
    """Global size multiplier (REPRO_BENCH_SCALE env var, default 1.0)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def nba2():
    from repro.experiments.figures import nba2_dataset

    return nba2_dataset(int(20_000 * bench_scale()))


@pytest.fixture(scope="session")
def network2():
    from repro.experiments.figures import network2_dataset

    return network2_dataset(int(20_000 * bench_scale()))
