"""Lemma 4 validation: E[|S|] = k|I|/(tau+1) under the random permutation
model, independent of the adversary's value distribution.

This is the Section V result that makes the hop algorithms' complexity
"linear in the output size in expectation". The paper validates it
implicitly through Figures 8–10; here it is measured directly.
"""

import numpy as np

from repro.analysis.expected import (
    empirical_answer_size,
    expected_answer_size,
    expected_answer_size_clipped,
)
from repro.data.synthetic import random_permutation_scores
from repro.experiments.report import format_table


def _measure(n=20_000, trials=8):
    """Measure |S| over [tau, n-1] (full windows: the lemma's model) and
    over [0, n-1] (with the clipped-window correction)."""
    rows = []
    for k, tau in ((1, 499), (5, 999), (10, 1999), (25, 999)):
        full = [
            empirical_answer_size(random_permutation_scores(n, seed=s), k, tau, lo=tau)
            for s in range(trials)
        ]
        measured = float(np.mean(full))
        predicted = expected_answer_size(k, n - tau, tau)
        whole = [
            empirical_answer_size(random_permutation_scores(n, seed=s), k, tau)
            for s in range(trials)
        ]
        measured_whole = float(np.mean(whole))
        predicted_whole = expected_answer_size_clipped(k, n, tau)
        rows.append(
            {
                "k": k,
                "tau": tau,
                "predicted E|S|": round(predicted, 1),
                "measured |S|": round(measured, 1),
                "rel err": f"{abs(measured - predicted) / predicted:.1%}",
                "clipped pred": round(predicted_whole, 1),
                "clipped meas": round(measured_whole, 1),
                "clipped err": f"{abs(measured_whole - predicted_whole) / predicted_whole:.1%}",
            }
        )
    return rows


def test_lemma4_answer_size(benchmark, save_report):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    report = format_table(rows, title="Lemma 4 — E[|S|] = k|I|/(tau+1) under RPM")
    save_report("lemma4_answer_size", report)
    for row in rows:
        rel = float(row["rel err"].rstrip("%")) / 100
        assert rel < 0.20, row
        clipped = float(row["clipped err"].rstrip("%")) / 100
        assert clipped < 0.20, row
