"""Figure 10: performance as the query interval length |I| varies.

Paper's claims reproduced here:
* top-k query counts grow (roughly linearly) with |I| for every
  algorithm that issues them;
* the hop algorithms scale better with |I| than the baselines: at
  |I| = 80% they are faster than T-Base and S-Base;
* relative ordering of the algorithms is consistent with Figures 8/9.
"""

import pytest

from repro.experiments.figures import INTERVAL_FRACTIONS, figure10_vary_interval


def _check_shape(fig):
    sweep = fig.data["sweep"]
    topk = sweep.series("mean_topk_queries")
    ms = sweep.series("mean_ms")
    answer = sweep.series("mean_answer_size")["t-hop"]

    # More interval, more answers, more queries.
    assert answer[-1] > answer[0]
    for algo in ("t-hop", "s-hop", "s-band"):
        assert topk[algo][-1] > topk[algo][0], algo
    # At the largest interval the hop algorithms beat both baselines.
    assert ms["t-hop"][-1] < ms["t-base"][-1]
    assert ms["t-hop"][-1] < ms["s-base"][-1]
    assert ms["s-hop"][-1] < ms["s-base"][-1]


@pytest.mark.parametrize("workload", ["nba2", "network2"])
def test_fig10_vary_interval(benchmark, workload, request, save_report):
    dataset = request.getfixturevalue(workload)
    fig = benchmark.pedantic(
        figure10_vary_interval,
        args=(dataset,),
        kwargs={"n_preferences": 3},
        rounds=1,
        iterations=1,
    )
    save_report(f"fig10_{workload}", fig.report, fig.metrics)
    _check_shape(fig)
    assert len(fig.data["sweep"].parameter_values()) == len(INTERVAL_FRACTIONS)
