"""Figure 13: runtime distribution over random 5-d NBA attribute subsets.

Paper's claim: across data distributions (here, random attribute
subsets), T-Hop's and S-Hop's costs concentrate while S-Band's spread
wide — its candidate set tracks the underlying attribute correlations.

At laptop scale, wall-clock noise swamps the few-millisecond differences
the paper measures at 1M rows, so the hard assertions here target the
*deterministic* work drivers — S-Band's per-subset candidate set varies
strongly across subsets while every algorithm's top-k query count stays
in a tight band — and the wall-time distribution plus its correlation
with |C| are reported informationally (on a quiet machine they show the
paper's pattern; see EXPERIMENTS.md).
"""

from statistics import stdev

import numpy as np

from repro.experiments.figures import figure13_runtime_distribution


def test_fig13_runtime_distribution(benchmark, save_report):
    fig = benchmark.pedantic(
        figure13_runtime_distribution,
        kwargs={"n": 16_000, "n_subsets": 12, "n_preferences": 3, "tau_fraction": 0.015},
        rounds=1,
        iterations=1,
    )
    times = fig.data["times"]
    counts = fig.data["topk_counts"]
    csizes = np.asarray(fig.data["candidate_sizes"], dtype=float)
    corr = {
        a: float(np.corrcoef(np.asarray(ts), csizes)[0, 1]) for a, ts in times.items()
    }
    cv = {a: stdev(ts) / (sum(ts) / len(ts)) for a, ts in times.items()}
    report = (
        fig.report
        + "\ncorrelation(runtime, |C|): "
        + ", ".join(f"{a}={c:+.2f}" for a, c in corr.items())
        + "\nruntime cv: "
        + ", ".join(f"{a}={c:.2f}" for a, c in cv.items())
    )
    save_report("fig13_nba5", report, fig.metrics)

    # S-Band's work driver |C| genuinely varies across subsets...
    assert csizes.max() > 1.5 * csizes.min(), csizes
    # ...while the distribution-insensitive hop algorithms issue a stable
    # number of top-k queries on every subset (the paper's robustness).
    for algo in ("t-hop", "s-hop"):
        per_subset = np.asarray(counts[algo], dtype=float)
        assert per_subset.max() <= 1.6 * per_subset.min(), (algo, per_subset)
    # S-Band's relative work spread exceeds the hop algorithms' query
    # spread: its cost profile is the one tied to the data distribution.
    band_spread = csizes.max() / csizes.min()
    hop_spread = max(counts["t-hop"]) / min(counts["t-hop"])
    assert band_spread > hop_spread, (band_spread, hop_spread)
