"""Batched-execution benchmark: one traversal answers a whole batch.

Asserts the tentpole claim of the batching tier: at batch size 16 on
the Zipfian same-preference workload, per-query CPU time through
``query_batch`` drops to at most a third of the serial ``query`` loop
— duplicates collapse onto one execution, near-duplicates share
memoised durability windows, and opening windows are thresholded in one
vectorised pass. The full speedup curve goes to
``results/batch_speedup.txt``.

CPU time (``time.process_time``) rather than wall time keeps the
assertion meaningful on loaded or single-core CI boxes; byte-identity
of every batched answer against the serial loop is asserted
unconditionally — a speedup over wrong answers is no speedup.
"""

from repro.experiments.batch_bench import batch_speedup_bench


def test_batch_speedup(save_report):
    result = batch_speedup_bench(verify=True)
    save_report(result.name, result.report, result.metrics)

    # Correctness half: every batch byte-identical to its serial loop,
    # and the service round fully verified against a reference engine.
    assert result.data["mismatches"] == 0, result.report
    assert result.data["incorrect"] == 0, result.report
    assert result.data["rejected"] == 0, result.report
    assert result.data["verified"] == result.data["requests"]
    assert result.data["coalesced"] > 0, result.report

    # Performance half: curve monotone enough to be real, and the
    # headline — >= 3x per-query CPU drop at batch 16.
    speedup = result.data["speedup"]
    assert all(size in speedup for size in (1, 4, 8, 16))
    assert speedup[16] > speedup[1], result.report
    assert speedup[16] >= 3.0, result.report
