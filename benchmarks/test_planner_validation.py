"""Planner validation: does `algorithm="auto"` pick a near-best algorithm?

The planner prices algorithms with the Lemma 4/5 expectations. Across a
grid of query shapes (selectivity x dimensionality), the planner's pick
must stay within a small factor of the fastest measured algorithm — the
executable version of the paper's Section VI guidance.
"""

from repro.data import generate_network, network_variant
from repro.experiments.harness import run_algorithm_suite
from repro.experiments.report import format_table
from repro.core.engine import DurableTopKEngine
from repro.core.query import DurableTopKQuery
from repro.scoring import LinearPreference
import numpy as np


def _measure():
    full = generate_network(12_000, seed=11)
    rows = []
    for d in (2, 20):
        dataset = network_variant(full, d)
        n = dataset.n
        engine = DurableTopKEngine(dataset, skyband_k_max=16)
        engine.prepare(["s-band"])
        for tau_frac in (0.02, 0.25):
            tau = int(n * tau_frac)
            suite = run_algorithm_suite(
                dataset,
                algorithms=["t-base", "s-base", "t-hop", "s-band", "s-hop"],
                tau=tau,
                n_preferences=2,
                engine=engine,
            )
            rng = np.random.default_rng(0)
            scorer = LinearPreference(rng.random(d) + 0.01)
            decision = engine.plan(DurableTopKQuery(k=10, tau=tau), scorer)
            best = min(suite.values(), key=lambda r: r.mean_ms)
            chosen = suite[decision.algorithm]
            rows.append(
                {
                    "d": d,
                    "tau": f"{tau_frac:.0%}",
                    "planner": decision.algorithm,
                    "planner_ms": round(chosen.mean_ms, 2),
                    "best": best.algorithm,
                    "best_ms": round(best.mean_ms, 2),
                    "overhead": round(chosen.mean_ms / max(best.mean_ms, 1e-9), 2),
                }
            )
    return rows


def test_planner_validation(benchmark, save_report):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    save_report(
        "planner_validation",
        format_table(rows, title="Planner validation — auto choice vs measured best"),
    )
    for row in rows:
        assert row["overhead"] <= 3.0, row