"""Table V: DBMS-backed (MiniDB) T-Hop vs T-Base, varying |I|.

Paper's claims reproduced here:
* T-Base's cost grows linearly with |I| (continuous sliding windows);
* T-Hop's cost grows much more slowly (linear in the answer size only);
* T-Hop reads fewer pages at every setting.
"""

from repro.experiments.tables import table5_dbms_vary_interval


def test_table5_dbms_vary_interval(benchmark, save_report):
    fig = benchmark.pedantic(
        table5_dbms_vary_interval, kwargs={"n": 40_000}, rounds=1, iterations=1
    )
    save_report("table5_dbms_interval", fig.report, fig.metrics)
    rows = fig.data["rows"]

    base_pages = [r["t-base pages"] for r in rows]
    hop_pages = [r["t-hop pages"] for r in rows]
    # T-Base cost scales with |I| — 5x interval should cost > 2.5x pages.
    assert base_pages[-1] > 2.5 * base_pages[0]
    # T-Hop grows strictly slower than T-Base.
    hop_growth = hop_pages[-1] / max(hop_pages[0], 1)
    base_growth = base_pages[-1] / max(base_pages[0], 1)
    assert hop_growth < base_growth
    # T-Hop cheaper at every point.
    for h, b in zip(hop_pages, base_pages):
        assert h < b
